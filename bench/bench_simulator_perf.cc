// Simulator micro-performance (google-benchmark).
//
// Not a paper figure — operational numbers for users of the library: how
// fast the fluid engine recomputes allocations, how many packet events the
// packet simulator processes per second, and end-to-end HDFS simulation
// throughput. These bound the experiment scales the repo can handle.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/fluidsim/fluid_simulation.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/packetsim/network.h"
#include "src/topology/topology.h"

using namespace cloudtalk;

namespace {

void BM_FluidMaxMinRecompute(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const Topology topo = Ec2Cluster(100);
  FluidSimulation sim(&topo);
  Rng rng(1);
  for (int i = 0; i < flows; ++i) {
    const NodeId src = topo.hosts()[rng.UniformInt(0, 99)];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts()[rng.UniformInt(0, 99)];
    }
    GroupSpec spec;
    FluidFlow flow;
    flow.resources = sim.resources().NetworkPath(topo, src, dst);
    flow.size = 1e15;
    spec.flows.push_back(std::move(flow));
    sim.AddGroup(std::move(spec));
  }
  sim.RunUntil(1e-6);
  for (auto _ : state) {
    // Force a fresh allocation by perturbing background load.
    sim.AddBackground(sim.resources().NicUp(topo.hosts()[0]), 1.0);
    benchmark::DoNotOptimize(sim.Usage(sim.resources().NicUp(topo.hosts()[0])));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidMaxMinRecompute)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMicrosecond);

void BM_PacketSimEventsPerSecond(benchmark::State& state) {
  SingleSwitchParams params;
  params.num_hosts = 32;
  const Topology topo = MakeSingleSwitch(params);
  for (auto _ : state) {
    packetsim::PacketNetwork net(&topo, packetsim::NetworkParams{});
    for (int i = 1; i < 32; ++i) {
      net.StartTcpFlow(topo.hosts()[i], topo.hosts()[0], 256 * kKB, 0);
    }
    net.RunUntilIdle(60);
    state.SetIterationTime(0);  // Use wall time; report events/s below.
    benchmark::DoNotOptimize(net.events().processed());
    state.counters["events"] = static_cast<double>(net.events().processed());
  }
}
BENCHMARK(BM_PacketSimEventsPerSecond)->Unit(benchmark::kMillisecond)->UseRealTime();

// The estimator hot loop (ISSUE 1): run a 3-hop transfer chain, Reset(),
// repeat on the same simulation — vs constructing a fresh simulation per
// iteration. The delta is the per-binding saving of the prepared scratch.
void BM_FluidRunAndReset(benchmark::State& state) {
  SingleSwitchParams params;
  params.num_hosts = 20;
  const Topology topo = MakeSingleSwitch(params);
  FluidSimulation sim(&topo);
  for (auto _ : state) {
    GroupSpec spec;
    for (int i = 0; i < 3; ++i) {
      FluidFlow flow;
      flow.resources =
          sim.resources().NetworkPath(topo, topo.hosts()[i], topo.hosts()[i + 1]);
      flow.size = 100 * kMB;
      spec.flows.push_back(std::move(flow));
    }
    sim.AddGroup(std::move(spec));
    sim.RunUntilIdle();
    sim.Reset();
    benchmark::DoNotOptimize(sim.recompute_count());
  }
}
BENCHMARK(BM_FluidRunAndReset)->Unit(benchmark::kMicrosecond);

void BM_FluidRunFreshSim(benchmark::State& state) {
  SingleSwitchParams params;
  params.num_hosts = 20;
  const Topology topo = MakeSingleSwitch(params);
  for (auto _ : state) {
    FluidSimulation sim(&topo);
    GroupSpec spec;
    for (int i = 0; i < 3; ++i) {
      FluidFlow flow;
      flow.resources =
          sim.resources().NetworkPath(topo, topo.hosts()[i], topo.hosts()[i + 1]);
      flow.size = 100 * kMB;
      spec.flows.push_back(std::move(flow));
    }
    sim.AddGroup(std::move(spec));
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.now());
  }
}
BENCHMARK(BM_FluidRunFreshSim)->Unit(benchmark::kMicrosecond);

void BM_HdfsWriteSimulated(benchmark::State& state) {
  // End-to-end cost of simulating one 3-replica 256 MB pipelined write.
  for (auto _ : state) {
    state.PauseTiming();
    Cluster cluster(LocalGigabitCluster(20));
    state.ResumeTiming();
    GroupSpec spec;
    FluidSimulation& sim = cluster.sim();
    NodeId prev = cluster.host(0);
    for (int r = 1; r <= 3; ++r) {
      FluidFlow net;
      net.resources = sim.resources().NetworkPath(cluster.topology(), prev, cluster.host(r));
      net.size = 256 * kMB;
      spec.flows.push_back(std::move(net));
      FluidFlow disk;
      disk.resources = {sim.resources().DiskWrite(cluster.host(r))};
      disk.size = 256 * kMB;
      spec.flows.push_back(std::move(disk));
      prev = cluster.host(r);
    }
    sim.AddGroup(std::move(spec));
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.now());
  }
}
BENCHMARK(BM_HdfsWriteSimulated)->Unit(benchmark::kMicrosecond);

// ---- Cold vs delta rebind comparison (ISSUE 6) ----
//
// The exhaustive engine's per-binding pattern at simulation level: a fixed
// workload where one "variable" flow is re-pointed per binding, served
// either by Reset() + full group rebuild (the cold rebind) or by checkpoint
// restore + an in-place resource patch (the delta rebind). Results must be
// bit-identical; the delta path must be at least 1.5x faster (the Table 2
// acceptance workload in bench_table2_eval_times targets 2x end to end).
int RunRebindComparison(const char* json_path) {
  // Star topology with per-host resources — the same shape the estimator's
  // scratch builds, where flows couple only through shared endpoints (an
  // Ec2-style core would fold every group into one component and never
  // exercise reuse).
  SingleSwitchParams topo_params;
  topo_params.num_hosts = 100;
  const Topology topo = MakeSingleSwitch(topo_params);
  const int num_hosts = static_cast<int>(topo.hosts().size());
  FluidSimulation sim(&topo);
  Rng rng(7);

  const auto random_path = [&](const FluidSimulation& s) {
    const NodeId src = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    }
    return s.resources().NetworkPath(topo, src, dst);
  };

  // Fixed workload: 12 two-flow groups; bindings re-point group 0's first
  // flow at host b (keeping the paper's one-odometer-digit-changes shape).
  constexpr int kGroups = 12;
  std::vector<GroupSpec> base_specs(kGroups);
  for (GroupSpec& spec : base_specs) {
    for (int f = 0; f < 2; ++f) {
      FluidFlow flow;
      flow.resources = random_path(sim);
      flow.size = 64 * kMB;
      spec.flows.push_back(std::move(flow));
    }
  }
  const int bindings = bench::QuickMode() ? 50 : 400;
  std::vector<std::vector<ResourceId>> binding_paths;
  binding_paths.reserve(bindings);
  for (int b = 0; b < bindings; ++b) {
    binding_paths.push_back(
        sim.resources().NetworkPath(topo, topo.hosts()[0], topo.hosts()[1 + b % (num_hosts - 1)]));
  }

  // Cold pass: Reset + rebuild every group per binding (reference result).
  std::vector<std::vector<Seconds>> reference(bindings);
  const auto cold_begin = std::chrono::steady_clock::now();
  for (int b = 0; b < bindings; ++b) {
    sim.Reset();
    std::vector<GroupId> ids;
    ids.reserve(kGroups);
    for (int g = 0; g < kGroups; ++g) {
      GroupSpec spec = base_specs[g];
      if (g == 0) {
        spec.flows[0].resources = binding_paths[b];
      }
      ids.push_back(sim.AddGroup(std::move(spec)));
    }
    if (!sim.RunUntilIdle()) {
      std::fprintf(stderr, "cold rebind pass stalled\n");
      return 1;
    }
    reference[b].reserve(kGroups);
    for (const GroupId id : ids) {
      reference[b].push_back(sim.GroupFinishTime(id));
    }
  }
  const auto cold_end = std::chrono::steady_clock::now();

  // Delta pass: install once, checkpoint, then restore + patch per binding.
  sim.Reset();
  std::vector<GroupId> ids;
  ids.reserve(kGroups);
  for (int g = 0; g < kGroups; ++g) {
    GroupSpec spec = base_specs[g];
    ids.push_back(sim.AddGroup(std::move(spec)));
  }
  sim.SaveCheckpoint();
  if (!sim.RunUntilIdle()) {  // Install run; captures the checkpoint solution.
    std::fprintf(stderr, "install run stalled\n");
    return 1;
  }
  bool identical = true;
  const auto delta_begin = std::chrono::steady_clock::now();
  for (int b = 0; b < bindings; ++b) {
    sim.RestoreCheckpoint();
    sim.MutableMemberResources(ids[0], 0) = binding_paths[b];
    sim.MarkGroupDirty(ids[0]);
    if (!sim.RunUntilIdle()) {
      std::fprintf(stderr, "delta rebind pass stalled\n");
      return 1;
    }
    for (int g = 0; g < kGroups; ++g) {
      identical = identical && sim.GroupFinishTime(ids[g]) == reference[b][g];
    }
  }
  const auto delta_end = std::chrono::steady_clock::now();

  const double cold_us =
      std::chrono::duration<double, std::micro>(cold_end - cold_begin).count() / bindings;
  const double delta_us =
      std::chrono::duration<double, std::micro>(delta_end - delta_begin).count() / bindings;
  const double speedup = delta_us > 0 ? cold_us / delta_us : 0;
  const auto counters = sim.solver_counters();
  std::printf("Fluid rebind, %d bindings x %d groups (us per binding):\n", bindings, kGroups);
  std::printf("%16s %16s %10s %12s %12s\n", "cold rebuild", "delta restore", "speedup",
              "delta hits", "cold solves");
  std::printf("%16.1f %16.1f %9.2fx %12lld %12lld\n", cold_us, delta_us, speedup,
              static_cast<long long>(counters.delta_component_hits),
              static_cast<long long>(counters.cold_component_solves));
  std::printf("results bit-identical: %s\n\n", identical ? "yes" : "NO");

  if (json_path != nullptr) {
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fprintf(f,
                   "{\"bench\":\"simulator_rebind\",\"bindings\":%d,\"groups\":%d,"
                   "\"cold_us_per_binding\":%.1f,\"delta_us_per_binding\":%.1f,"
                   "\"speedup\":%.2f,\"identical\":%s}\n",
                   bindings, kGroups, cold_us, delta_us, speedup,
                   identical ? "true" : "false");
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
    }
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: delta rebind diverged from the cold rebuild (D501 material)\n");
    return 1;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr, "FAIL: delta rebind speedup %.2fx is below the 1.5x floor\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  const int rc = RunRebindComparison(json_path);
  if (rc != 0) {
    return rc;
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
