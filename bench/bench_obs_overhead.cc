// ISSUE 5 acceptance: the observability layer (metrics registry + query
// tracing) must cost under 5% of the query-response path when compiled in.
//
// One binary cannot compare CLOUDTALK_OBS=ON against =OFF, so the bench
// flips the *runtime* switch (obs::SetRuntimeEnabled) instead: with it off,
// every CT_OBS_* macro takes the early-exit branch and TraceContexts record
// nothing — an upper bound on the compiled-out cost, and exactly the cost a
// deployment pays for leaving the build flag on. The workload is the full
// CloudTalkServer::Answer path (parse, lint, compile, sample, probe over
// the simulated transport, heuristic bind, reserve) on the Section 5.3
// HDFS-write query over a 20-host cluster.
//
// ON/OFF batches are interleaved (ABAB...) so clock drift and thermal state
// cancel; the reported figure is the median batch time per side.
//
// Output ends with one machine-readable JSON line; pass a path argument to
// also write that line to a file (CI stores it as BENCH_obs.json).
// Exit code: 0 = overhead under the bound (or measurement noise makes the
// comparison meaningless), 1 = the instrumented path is >5% slower.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/harness/cluster.h"
#include "src/obs/metrics.h"
#include "src/topology/topology.h"

using namespace cloudtalk;

namespace {

// HDFS write pipeline over the cluster's real addresses (10.0.0.*).
std::string WriteQuery(int n) {
  std::ostringstream query;
  query << "r1 = r2 = r3 = (";
  for (int i = 1; i <= n; ++i) {
    query << "10.0.0." << i << " ";
  }
  query << ")\n";
  query << "f1 10.0.0." << (n + 1) << " -> r1 size 256M rate r(f2)\n";
  query << "f2 r1 -> disk size 256M rate r(f1)\n";
  query << "f3 r1 -> r2 size 256M rate r(f4) transfer t(f2)\n";
  query << "f4 r2 -> disk size 256M rate r(f3)\n";
  query << "f5 r2 -> r3 size 256M rate r(f6) transfer t(f4)\n";
  query << "f6 r3 -> disk size 256M rate r(f5)\n";
  return query.str();
}

// Median batch time in microseconds for `batches` x `iters` Answer calls.
double RunBatches(Cluster& cluster, const std::string& text, bool enabled, int batches,
                  int iters, std::vector<double>* out) {
  out->clear();
  for (int b = 0; b < batches; ++b) {
    obs::SetRuntimeEnabled(enabled);
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      auto reply = cluster.cloudtalk().Answer(text);
      if (!reply.ok()) {
        std::fprintf(stderr, "query rejected: %s\n", reply.error().ToString().c_str());
        std::exit(2);
      }
    }
    const auto end = std::chrono::steady_clock::now();
    out->push_back(std::chrono::duration<double, std::micro>(end - begin).count() / iters);
  }
  std::vector<double> sorted = *out;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const int n = 20;
  const int iters = bench::QuickMode() ? 50 : 200;
  const int batches = bench::QuickMode() ? 11 : 31;

  bench::PrintHeader("Observability overhead on the query-response path");

  SingleSwitchParams params;
  params.num_hosts = n + 1;  // Pool hosts plus the writing client.
  params.host_caps.nic_up = params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.server.eval_threads = 1;
  Cluster cluster(MakeSingleSwitch(params), options);
  cluster.StartStatusSweep();
  cluster.MeasureNow();

  const std::string text = WriteQuery(n);

  // Warm-up: fault in code paths, populate metric instruments, fill the
  // reservation table to steady state.
  std::vector<double> scratch;
  RunBatches(cluster, text, true, 2, iters, &scratch);
  RunBatches(cluster, text, false, 2, iters, &scratch);

  // Interleave ON/OFF batches so slow drift hits both sides equally.
  std::vector<double> on_batches;
  std::vector<double> off_batches;
  for (int round = 0; round < batches; ++round) {
    std::vector<double> one;
    RunBatches(cluster, text, true, 1, iters, &one);
    on_batches.push_back(one[0]);
    RunBatches(cluster, text, false, 1, iters, &one);
    off_batches.push_back(one[0]);
  }
  obs::SetRuntimeEnabled(true);

  std::sort(on_batches.begin(), on_batches.end());
  std::sort(off_batches.begin(), off_batches.end());
  const double on_us = on_batches[on_batches.size() / 2];
  const double off_us = off_batches[off_batches.size() / 2];
  const double overhead_pct = off_us > 0 ? (on_us - off_us) / off_us * 100.0 : 0.0;
  const bool pass = overhead_pct < 5.0;

  std::printf("%-32s %10.1f us/query\n", "obs runtime-enabled (median)", on_us);
  std::printf("%-32s %10.1f us/query\n", "obs runtime-disabled (median)", off_us);
  std::printf("%-32s %+10.2f %%  (bound: <5%%)\n", "overhead", overhead_pct);

  char json[256];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"obs_overhead\",\"hosts\":%d,\"on_us\":%.1f,\"off_us\":%.1f,"
                "\"overhead_pct\":%.2f,\"pass\":%s}",
                n, on_us, off_us, overhead_pct, pass ? "true" : "false");
  std::printf("%s\n", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 2;
    }
  }
  return pass ? 0 : 1;
}
