// Shared experiment drivers for the benchmark binaries.
//
// Each bench regenerates one of the paper's tables/figures; the HDFS load
// protocol (Section 5.3) is common to several of them and lives here:
//
//   "First, each node copies a 768MB file from local storage to HDFS.
//    Then, at each step, a percentage of servers become active. In this
//    state, a server will attempt to copy three files, chosen at random,
//    from HDFS to local storage [or write files to HDFS]. There is an idle
//    period of up to three seconds (also random) between copy operations."
#ifndef CLOUDTALK_BENCH_EXPERIMENTS_H_
#define CLOUDTALK_BENCH_EXPERIMENTS_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/hdfs/mini_hdfs.h"

namespace cloudtalk {
namespace bench {

// True when the bench should run a reduced sweep (set CLOUDTALK_BENCH_FULL=1
// for paper-scale repetition counts).
inline bool QuickMode() { return std::getenv("CLOUDTALK_BENCH_FULL") == nullptr; }

struct HdfsLoadParams {
  enum class Mode { kRead, kWrite };
  Mode mode = Mode::kRead;
  std::function<Topology()> topology;          // Cluster profile.
  Bytes file_size = 768 * kMB;                 // 768 MB local / 512 MB EC2.
  Bytes block_size = 256 * kMB;
  double active_fraction = 0.5;                // Servers doing copies.
  int copies_per_active = 3;
  Seconds max_idle_gap = 3.0;
  bool cloudtalk = false;
  Seconds reservation_hold = 300 * kMillisecond;
  int sample_override = 0;                     // 0 = probe the whole pool.
  int repetitions = 1;
  uint64_t seed = 1;
  Seconds deadline = 3600;                     // Per repetition.
  // Optional hook to adjust the cluster configuration (ablation benches).
  std::function<void(ClusterOptions&)> configure;
};

struct HdfsLoadResult {
  std::vector<double> durations;  // Per individual copy operation.
  int unfinished = 0;
};

// Runs the Section 5.3 read/write load protocol and returns per-operation
// completion times.
inline HdfsLoadResult RunHdfsLoad(const HdfsLoadParams& params) {
  HdfsLoadResult result;
  for (int rep = 0; rep < params.repetitions; ++rep) {
    ClusterOptions options;
    options.seed = params.seed + rep * 1000003;
    options.server.reservation_hold = params.reservation_hold;
    if (params.sample_override > 0) {
      options.server.sample_override = params.sample_override;
      options.server.sample_threshold = params.sample_override;
    }
    if (params.configure) {
      params.configure(options);
    }
    Cluster cluster(params.topology(), options);
    cluster.StartStatusSweep();
    HdfsOptions hdfs_options;
    hdfs_options.block_size = params.block_size;
    hdfs_options.cloudtalk_reads = params.cloudtalk;
    hdfs_options.cloudtalk_writes = params.cloudtalk;
    MiniHdfs hdfs(&cluster, hdfs_options);

    const int n = cluster.num_hosts();
    Rng rng(options.seed * 7 + 13);

    // Seed data: one file per node, first replica local, rest random.
    const int blocks =
        static_cast<int>((params.file_size + params.block_size - 1) / params.block_size);
    for (int i = 0; i < n; ++i) {
      std::vector<std::vector<NodeId>> replicas(blocks);
      for (int b = 0; b < blocks; ++b) {
        replicas[b].push_back(cluster.host(i));
        while (replicas[b].size() < 3) {
          const NodeId candidate = cluster.host(rng.UniformInt(0, n - 1));
          if (std::find(replicas[b].begin(), replicas[b].end(), candidate) ==
              replicas[b].end()) {
            replicas[b].push_back(candidate);
          }
        }
      }
      hdfs.InstallFile("seed" + std::to_string(i), params.file_size, std::move(replicas));
    }

    // Activate a fraction of servers.
    const int active = std::max(1, static_cast<int>(params.active_fraction * n + 0.5));
    const std::vector<int> chosen = rng.SampleWithoutReplacement(n, active);
    int outstanding = 0;
    int write_counter = 0;
    // Each active server runs `copies_per_active` operations sequentially
    // with random idle gaps.
    std::function<void(NodeId, int, uint64_t)> run_op = [&](NodeId client, int remaining,
                                                            uint64_t op_seed) {
      if (remaining == 0) {
        return;
      }
      Rng op_rng(op_seed);
      const Seconds gap = op_rng.Uniform(0, params.max_idle_gap);
      cluster.sim().Schedule(cluster.now() + gap, [&, client, remaining, op_seed] {
        ++outstanding;
        auto done = [&, client, remaining, op_seed](Seconds start, Seconds end) {
          result.durations.push_back(end - start);
          --outstanding;
          run_op(client, remaining - 1, op_seed * 31 + 7);
        };
        if (params.mode == HdfsLoadParams::Mode::kRead) {
          Rng pick(op_seed ^ 0x5bd1e995);
          const int victim = static_cast<int>(pick.UniformInt(0, n - 1));
          hdfs.ReadFile(client, "seed" + std::to_string(victim), done);
        } else {
          hdfs.WriteFile(client, "w" + std::to_string(write_counter++), params.file_size,
                         done);
        }
      });
    };
    for (int index : chosen) {
      run_op(cluster.host(index), params.copies_per_active,
             options.seed * 977 + index * 131 + 1);
    }
    cluster.RunUntil(cluster.now() + params.deadline);
    result.unfinished += outstanding;
  }
  return result;
}

// ---- Reduce-placement experiment (Figures 7 and 8) ----
//
// "We evaluate these effects by having UDP iperf connections from outside
// the Hadoop cluster arrive at a subset of the machines within the cluster
// ... All other machines run iperf senders." A sort job runs on the
// cluster; reducers = half the cluster size.
struct ReduceExperimentParams {
  int cluster_size = 10;        // Hadoop nodes (10 local / 58 EC2).
  int sender_count = 10;        // Outside iperf senders.
  double udp_target_fraction = 0.3;  // Fraction of cluster nodes blasted.
  Bytes input_per_node = 512 * kMB;  // 256 MB on EC2.
  Bytes split_size = 128 * kMB;
  bool ec2 = false;
  bool cloudtalk = false;
  uint64_t seed = 1;
};

struct ReduceExperimentResult {
  double job_time = 0;
  double avg_shuffle = 0;
  double p99_shuffle = 0;
  bool finished = false;
};

ReduceExperimentResult RunReduceExperiment(const ReduceExperimentParams& params);

// Formatting helpers shared by the bench mains.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintSeriesRow(const char* label, double x, double avg, double p99) {
  std::printf("%-24s %8.0f%% %12.2f %12.2f\n", label, x, avg, p99);
}

}  // namespace bench
}  // namespace cloudtalk

#endif  // CLOUDTALK_BENCH_EXPERIMENTS_H_
