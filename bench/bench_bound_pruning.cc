// ISSUE 7 acceptance: O500 branch-and-bound vs. the same plan without it.
//
// Workload: a busy cluster. Four fan-out shards of *distinct* sizes (so
// O200 cannot claim the workers are interchangeable) draw workers from a
// sixteen-host pool whose second half is nearly saturated. The first
// complete binding the odometer reaches lives on the idle half and sets a
// small incumbent; every prefix that pins a worker to a saturated host then
// carries a sound lower bound far above it and is cut without simulating
// any of its completions. Both configurations run the identical query and
// status with the full static plan; the only difference is kOptBoundPruning:
//   baseline — O100..O400 plan, no branch-and-bound.
//   bounded  — the same plan plus O500.
// The bench fails (exit non-zero) unless the two return byte-identical
// bindings and makespans AND the bounded walk enumerates at least 2x fewer
// bindings — the ISSUE 7 acceptance floor (this shape gives ~25x).
//
// Output ends with one machine-readable JSON line; pass a path argument to
// also write that line to a file (CI stores it as BENCH_bound.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "bench/experiments.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/lang/analysis.h"
#include "src/lang/opt.h"
#include "src/lang/parser.h"

using namespace cloudtalk;

namespace {

// w workers over an n-host pool, one shard each, sizes 2x apart so no two
// workers are symmetric and every chain group's bound is its own.
std::string SkewedShuffleQuery(int n, int w) {
  std::ostringstream query;
  for (int i = 1; i <= w; ++i) {
    query << "W" << i << " = ";
  }
  query << "(";
  for (int i = 1; i <= n; ++i) {
    query << "10.0.1." << i << " ";
  }
  query << ")\n";
  for (int i = 1; i <= w; ++i) {
    query << "shard" << i << " 10.0.0.9 -> W" << i << " size " << (40 * (1 << (i - 1)))
          << "M\n";
  }
  return query.str();
}

// First `idle` hosts are free; the rest run at 95% NIC utilisation, which
// the estimator floors at the 10% availability fraction.
StatusByAddress BusyClusterStatus(int n, int idle) {
  StatusByAddress status;
  auto report = [](double frac) {
    StatusReport r;
    r.nic_tx_cap = r.nic_rx_cap = 1e9;
    r.nic_tx_use = frac * 1e9;
    r.nic_rx_use = frac * 1e9;
    r.disk_read_cap = r.disk_write_cap = 4e9;
    return r;
  };
  for (int i = 1; i <= n; ++i) {
    status["10.0.1." + std::to_string(i)] = report(i <= idle ? 0.0 : 0.95);
  }
  status["10.0.0.9"] = report(0.0);
  return status;
}

struct TimedRun {
  double us = 0;  // Best of `iters` runs.
  ExhaustiveResult result;
};

TimedRun TimeEval(const lang::CompiledQuery& compiled, const StatusByAddress& status,
                  const lang::PrunedSpace& plan, int iters) {
  TimedRun out;
  out.us = 1e300;
  for (int i = 0; i < iters; ++i) {
    FlowLevelEstimator estimator;
    ExhaustiveParams params;
    params.optimize = true;
    params.plan = &plan;
    const auto begin = std::chrono::steady_clock::now();
    Result<ExhaustiveResult> result = EvaluateExhaustive(compiled, status, estimator, params);
    const auto end = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n", result.error().ToString().c_str());
      std::exit(1);
    }
    out.us = std::min(out.us, std::chrono::duration<double, std::micro>(end - begin).count());
    out.result = std::move(result.value());
  }
  return out;
}

bool Identical(const ExhaustiveResult& a, const ExhaustiveResult& b) {
  // Byte-identical makespan (no tolerance) and the same binding.
  if (std::memcmp(&a.estimate.makespan, &b.estimate.makespan, sizeof(double)) != 0) {
    return false;
  }
  if (a.binding.size() != b.binding.size()) {
    return false;
  }
  for (const auto& [var, endpoint] : a.binding) {
    const auto it = b.binding.find(var);
    if (it == b.binding.end() || !(it->second == endpoint)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = 16;
  const int w = 4;
  const int idle = 8;
  const int iters = bench::QuickMode() ? 2 : 5;

  bench::PrintHeader("O500 bound pruning (skewed shuffle on a half-busy cluster, n=16 w=4)");

  auto parsed = lang::Parse(SkewedShuffleQuery(n, w));
  auto compiled = lang::CompiledQuery::Compile(parsed.value());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.error().ToString().c_str());
    return 1;
  }
  const StatusByAddress status = BusyClusterStatus(n, idle);

  lang::OptimizeParams opt_params;
  opt_params.passes = lang::kOptAllPasses & ~lang::kOptBoundPruning;
  const lang::PrunedSpace base_plan = lang::Optimize(compiled.value(), status, opt_params);
  opt_params.passes = lang::kOptAllPasses;
  const lang::PrunedSpace bound_plan = lang::Optimize(compiled.value(), status, opt_params);

  const TimedRun base = TimeEval(compiled.value(), status, base_plan, iters);
  const TimedRun bounded = TimeEval(compiled.value(), status, bound_plan, iters);

  const bool identical = Identical(base.result, bounded.result);
  const double reduction =
      static_cast<double>(base.result.counters.enumerated) /
      static_cast<double>(std::max<int64_t>(1, bounded.result.counters.enumerated));
  const bool pruned_enough = reduction >= 2.0;

  std::printf(
      "bindings enumerated: %lld baseline vs %lld bounded (%.1fx, %lld bound prunes)\n",
      static_cast<long long>(base.result.counters.enumerated),
      static_cast<long long>(bounded.result.counters.enumerated), reduction,
      static_cast<long long>(bounded.result.counters.bound_prunes));
  std::printf("%-28s %12.0f us\n", "O100..O400 plan", base.us);
  std::printf("%-28s %12.0f us  (%.2fx)\n", "with O500 branch-and-bound", bounded.us,
              base.us / bounded.us);
  std::printf("results byte-identical: %s\n", identical ? "yes" : "NO");
  std::printf("reduction >= 2x: %s\n", pruned_enough ? "yes" : "NO");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"bound_pruning\",\"n\":%d,\"w\":%d,\"idle\":%d,"
                "\"enumerated_base\":%lld,\"enumerated_bounded\":%lld,"
                "\"bound_prunes\":%lld,\"reduction\":%.2f,"
                "\"base_us\":%.1f,\"bounded_us\":%.1f,\"speedup\":%.2f,\"identical\":%s}",
                n, w, idle, static_cast<long long>(base.result.counters.enumerated),
                static_cast<long long>(bounded.result.counters.enumerated),
                static_cast<long long>(bounded.result.counters.bound_prunes), reduction,
                base.us, bounded.us, base.us / bounded.us, identical ? "true" : "false");
  std::printf("%s\n", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  return (identical && pruned_enough) ? 0 : 1;
}
