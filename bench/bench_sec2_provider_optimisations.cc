// Section 2: provider-side optimisations unlocked by CloudTalk.
//
// "Providers have few options to optimise their infrastructure without
// tenant support." The two examples the paper gives:
//   * spreading elephant connections over multiple paths (MPTCP-style) —
//     single-path ECMP "can lead to wasting 60% of capacity because of
//     collisions";
//   * enabling PFC selectively for incast-prone scatter-gather traffic.
//
// Both need to know the tenant's traffic type — which is exactly what a
// CloudTalk query reveals. This bench classifies the two canonical queries
// with the provider policy module, then measures each workload under every
// transport configuration to show the classified choice is the right one.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/core/policy.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"
#include "src/packetsim/network.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

Topology OversubscribedFabric() {
  Vl2Params params;
  params.num_racks = 2;
  params.hosts_per_rack = 8;
  params.num_aggs = 4;
  params.host_link = 1 * kGbps;
  params.tor_uplink = 2 * kGbps;
  return MakeVl2(params);
}

// Eight synchronized 100 MB elephants rack 0 -> rack 1.
Seconds RunElephants(bool pfc, int subflows, uint64_t seed) {
  const Topology topo = OversubscribedFabric();
  packetsim::NetworkParams params;
  params.enable_pfc = pfc;
  params.seed = seed;
  packetsim::PacketNetwork net(&topo, params);
  Seconds last = 0;
  for (int i = 0; i < 8; ++i) {
    auto cb = [&last](packetsim::FlowId, Seconds t) { last = std::max(last, t); };
    if (subflows > 1) {
      net.StartMultipathFlow(topo.hosts()[i], topo.hosts()[8 + i], 100 * kMB, subflows, 0, cb);
    } else {
      net.StartTcpFlow(topo.hosts()[i], topo.hosts()[8 + i], 100 * kMB, 0, cb);
    }
  }
  net.RunUntilIdle(300);
  return last;
}

// 48 leaves answer one aggregator with 10 KB each, in rounds.
Seconds RunScatterGather(bool pfc, uint64_t seed) {
  const Topology topo = OversubscribedFabric();
  packetsim::NetworkParams params;
  params.enable_pfc = pfc;
  params.seed = seed;
  packetsim::PacketNetwork net(&topo, params);
  Seconds last = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 1; i < 13; ++i) {
      for (int rack = 0; rack < 2; ++rack) {
        // Not enough hosts for 48 distinct leaves: reuse hosts as repeated
        // responders (same incast at the aggregator port).
        const NodeId leaf = topo.hosts()[(rack * 8 + i % 8)];
        if (leaf == topo.hosts()[15]) {
          continue;
        }
        net.StartTcpFlow(leaf, topo.hosts()[15], 10 * kKB, round * 0.05,
                         [&last](packetsim::FlowId, Seconds t) { last = std::max(last, t); });
      }
    }
  }
  net.RunUntilIdle(300);
  return last;
}

double AverageOverSeeds(const std::function<Seconds(uint64_t)>& run, int seeds) {
  double total = 0;
  for (int s = 1; s <= seeds; ++s) {
    total += run(static_cast<uint64_t>(s));
  }
  return total / seeds;
}

}  // namespace

int main() {
  const int seeds = QuickMode() ? 2 : 5;

  // ---- Classification ----
  PrintHeader("Section 2: classifying tenant queries");
  std::string elephant_text = "f1 a -> b size 100M\nf2 c -> d size 100M\n";
  std::string scatter_text = "AGG = (x)\n";
  for (int i = 0; i < 12; ++i) {
    scatter_text += "f" + std::to_string(i) + " leaf" + std::to_string(i) +
                    " -> AGG size 10KB\n";
  }
  for (const auto& [label, text] :
       {std::pair{"bulk replication", elephant_text}, std::pair{"web search", scatter_text}}) {
    auto query = lang::Parse(text);
    auto compiled = lang::CompiledQuery::Compile(query.value());
    const TransportPolicy policy = ClassifyQuery(compiled.value());
    std::printf("  %-18s -> %-15s (pfc=%s, subflows=%d)\n", label,
                TrafficClassName(policy.traffic_class), policy.enable_pfc ? "on" : "off",
                policy.multipath_subflows);
  }

  // ---- Elephants under each transport config ----
  PrintHeader("Elephants (8 x 100 MB cross-rack, 4 ECMP paths, oversubscribed)");
  std::printf("%-28s %14s\n", "transport", "completion (s)");
  const double ideal = 100 * kMB * 8 / 1e9;
  std::printf("%-28s %14.2f\n", "(per-host ideal)", ideal);
  std::printf("%-28s %14.2f\n", "single path (ECMP hash)",
              AverageOverSeeds([](uint64_t s) { return RunElephants(false, 1, s); }, seeds));
  std::printf("%-28s %14.2f\n", "multipath x4 (classified)",
              AverageOverSeeds([](uint64_t s) { return RunElephants(false, 4, s); }, seeds));
  std::printf("%-28s %14.2f\n", "single path + PFC",
              AverageOverSeeds([](uint64_t s) { return RunElephants(true, 1, s); }, seeds));
  std::printf("  (PFC's elephant penalty appears under mixed traffic — head-of-line\n"
              "   blocking from someone else's incast; see bench_ablation_pfc)\n");

  // ---- Scatter-gather under each transport config ----
  PrintHeader("Scatter-gather (repeated 24-wide 10 KB incast rounds)");
  std::printf("%-28s %14s\n", "transport", "completion (s)");
  std::printf("%-28s %14.2f\n", "drop-tail (default)",
              AverageOverSeeds([](uint64_t s) { return RunScatterGather(false, s); }, seeds));
  std::printf("%-28s %14.2f\n", "PFC (classified)",
              AverageOverSeeds([](uint64_t s) { return RunScatterGather(true, s); }, seeds));

  std::printf("\npaper shape: each feature helps exactly the traffic class CloudTalk\n"
              "identifies and is neutral-to-harmful elsewhere — the provider needs the\n"
              "query to know which knob to turn.\n");
  return 0;
}
