// Closed-loop throughput of the sharded CloudTalk service (ISSUE 10).
//
// Two phases:
//  1. Identity: 64 generated queries are answered by the single
//     CloudTalkServer and by a 4-shard ShardedServer on identically seeded
//     twin clusters; every reply must be byte-identical (the D505 contract
//     — the fuzzing version lives in `ctcheck --diff-shard`).
//  2. Throughput: 8 closed-loop client threads issue queries against one
//     4-shard ShardedServer (admission_slots = 8) over a 32-host fleet and
//     the run reports qps plus p50/p99 answer latency read back from the
//     M102 answer-seconds histogram.
//
// Output: one JSON object to argv[1] (default BENCH_throughput.json), CI
// archives it. Exits nonzero when any reply diverges or the closed-loop
// rate falls under the 1000 qps floor the acceptance gate sets.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/server.h"
#include "src/core/shard.h"
#include "src/harness/cluster.h"
#include "src/obs/metrics.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

constexpr int kHosts = 32;
constexpr int kShards = 4;
constexpr int kClientThreads = 8;
constexpr int kQueriesPerThread = 2000;
constexpr int kIdentityQueries = 64;
constexpr double kQpsFloor = 1000.0;

Cluster MakeBenchCluster(uint64_t seed) {
  SingleSwitchParams params;
  params.num_hosts = kHosts;
  params.host_caps.nic_up = params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.seed = seed;
  options.server.seed = seed;
  options.server.eval_threads = 1;
  options.server.reservation_hold = 60.0;
  options.server.admission_slots = kClientThreads;
  Cluster cluster(MakeSingleSwitch(params), options);
  cluster.StartStatusSweep();
  cluster.AddBackgroundPair(cluster.host(2), cluster.host(5), 600 * kMbps);
  cluster.AddBackgroundPair(cluster.host(9), cluster.host(12), 800 * kMbps);
  cluster.MeasureNow();
  return cluster;
}

ShardedConfig BenchShardConfig(Cluster* cluster) {
  ShardedConfig cfg;
  cfg.server = cluster->cloudtalk().config();
  cfg.shards = kShards;
  return cfg;
}

// A small deterministic query generator: a 2-4 host pool from a host slice,
// one or two flows, occasionally static/noreserve.
std::string GenerateQuery(Cluster* cluster, uint64_t seed, int lo, int hi) {
  Rng rng(seed ^ 0xa0761d6478bd642full);
  std::ostringstream q;
  if (rng.Bernoulli(0.3)) {
    q << "option static\n";
  }
  if (rng.Bernoulli(0.2)) {
    q << "option noreserve\n";
  }
  const int span = hi - lo + 1;
  const int k = static_cast<int>(rng.UniformInt(2, std::min(4, span)));
  q << "A = (";
  bool first = true;
  for (const int idx : rng.SampleWithoutReplacement(span, k)) {
    q << (first ? "" : " ") << cluster->ip(lo + idx);
    first = false;
  }
  q << ")\nf1 A -> " << cluster->ip(lo) << " size " << rng.UniformInt(1, 64) << "M\n";
  if (rng.Bernoulli(0.4)) {
    q << "f2 A -> disk size " << rng.UniformInt(1, 32) << "M\n";
  }
  return q.str();
}

std::string ReplyDigest(const Result<QueryReply>& reply) {
  if (!reply.ok()) {
    return "error: " + reply.error().message;
  }
  std::ostringstream out;
  out << "binding [";
  for (const auto& [var, endpoint] : reply.value().binding) {
    out << var << "=" << endpoint.name << " ";
  }
  out << "] scores [";
  for (const auto& [name, score] : reply.value().scores) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s=%.17g ", name.c_str(), score);
    out << buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", reply.value().estimate.makespan);
  out << "] makespan " << buf;
  return out.str();
}

int IdentityPhase() {
  int mismatches = 0;
  Cluster oracle_cluster = MakeBenchCluster(/*seed=*/42);
  Cluster sharded_cluster = MakeBenchCluster(/*seed=*/42);
  ShardedServer sharded(BenchShardConfig(&sharded_cluster), &sharded_cluster.directory(),
                        &sharded_cluster.transport(),
                        [&sharded_cluster] { return sharded_cluster.now(); });
  for (int i = 0; i < kIdentityQueries; ++i) {
    const int lo = (i % 4) * (kHosts / 4);
    const std::string query = GenerateQuery(&oracle_cluster, static_cast<uint64_t>(i), lo,
                                            lo + kHosts / 4 - 1);
    const std::string want = ReplyDigest(oracle_cluster.cloudtalk().Answer(query));
    const std::string got = ReplyDigest(sharded.Answer(query));
    if (got != want) {
      ++mismatches;
      std::fprintf(stderr, "identity mismatch on query %d:\n  single:  %s\n  sharded: %s\n",
                   i, want.c_str(), got.c_str());
    }
  }
  return mismatches;
}

// Answer-latency percentile out of the M102 histogram: the upper bound of
// the first bucket whose cumulative count covers quantile `q`.
double HistogramQuantile(const obs::Histogram& hist, double q) {
  const int64_t total = hist.count();
  if (total == 0) {
    return 0;
  }
  const int64_t want = static_cast<int64_t>(q * static_cast<double>(total - 1)) + 1;
  for (int b = 0; b < hist.spec().buckets; ++b) {
    if (hist.CumulativeCount(b) >= want) {
      return hist.UpperBound(b);
    }
  }
  return hist.UpperBound(hist.spec().buckets - 1);
}

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_throughput.json";

  std::printf("identity: %d queries, single server vs %d-shard ShardedServer...\n",
              kIdentityQueries, kShards);
  const int mismatches = IdentityPhase();
  std::printf("identity: %d mismatch(es)\n", mismatches);

  Cluster cluster = MakeBenchCluster(/*seed=*/7);
  ShardedServer sharded(BenchShardConfig(&cluster), &cluster.directory(),
                        &cluster.transport(), [&cluster] { return cluster.now(); });
  // Warm every thread's path once, then zero the registry so the measured
  // window holds exactly the closed-loop queries.
  (void)sharded.Answer(GenerateQuery(&cluster, 999, 0, kHosts / 4 - 1));
  obs::Registry::Instance().Reset();

  std::vector<std::thread> clients;
  std::atomic<int64_t> answered{0};
  std::atomic<int64_t> failed{0};
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&cluster, &sharded, &answered, &failed, t] {
      // Each client works a fixed host slice so admission mostly proceeds in
      // parallel (disjoint footprints), with occasional cross-slice overlap
      // from the shared slice boundaries exercising the conflict path.
      const int lo = (t % 4) * (kHosts / 4);
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const uint64_t seed = static_cast<uint64_t>(t) * kQueriesPerThread +
                              static_cast<uint64_t>(i);
        const std::string query = GenerateQuery(&cluster, seed, lo, lo + kHosts / 4 - 1);
        if (sharded.Answer(query).ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  const int64_t total = answered.load() + failed.load();
  const double qps = static_cast<double>(total) / elapsed.count();
  double p50 = 0;
  double p99 = 0;
  if (obs::kObsEnabled) {
    const obs::Histogram& hist = *obs::Registry::Instance().histogram("M102");
    p50 = HistogramQuantile(hist, 0.50);
    p99 = HistogramQuantile(hist, 0.99);
  }
  std::printf("throughput: %lld queries (%lld failed) in %.3fs = %.0f qps, "
              "p50 <= %.6fs, p99 <= %.6fs\n",
              static_cast<long long>(total), static_cast<long long>(failed.load()),
              elapsed.count(), qps, p50, p99);

  const bool pass = mismatches == 0 && qps >= kQpsFloor;
  std::ofstream out(out_path);
  out << "{\"bench\":\"throughput\",\"shards\":" << kShards
      << ",\"threads\":" << kClientThreads << ",\"hosts\":" << kHosts
      << ",\"identity_queries\":" << kIdentityQueries
      << ",\"identity_mismatches\":" << mismatches << ",\"queries\":" << total
      << ",\"failed\":" << failed.load() << ",\"elapsed_seconds\":" << elapsed.count()
      << ",\"qps\":" << qps << ",\"p50_seconds\":" << p50 << ",\"p99_seconds\":" << p99
      << ",\"qps_floor\":" << kQpsFloor << ",\"pass\":" << (pass ? "true" : "false")
      << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  if (!pass) {
    std::fprintf(stderr, "bench_throughput: FAILED (%d mismatches, %.0f qps, floor %.0f)\n",
                 mismatches, qps, kQpsFloor);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cloudtalk

int main(int argc, char** argv) { return cloudtalk::main(argc, argv); }
