// Section 5.1 query response-time microbenchmarks (google-benchmark).
//
// Paper numbers, 20-server HDFS-write-style query:
//   parse           0.32 ms
//   heuristic eval  0.13 ms
//   total           0.45 ms
//   brute force      130 ms
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "src/common/rng.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;

namespace {

// The Section 5.3 HDFS write pipeline query over 20 servers.
std::string WriteQuery(int n) {
  std::ostringstream query;
  query << "r1 = r2 = r3 = (";
  for (int i = 1; i <= n; ++i) {
    query << "dn" << i << " ";
  }
  query << ")\n";
  query << "f1 client -> r1 size 256M rate r(f2)\n";
  query << "f2 r1 -> disk size 256M rate r(f1)\n";
  query << "f3 r1 -> r2 size 256M rate r(f4) transfer t(f2)\n";
  query << "f4 r2 -> disk size 256M rate r(f3)\n";
  query << "f5 r2 -> r3 size 256M rate r(f6) transfer t(f4)\n";
  query << "f6 r3 -> disk size 256M rate r(f5)\n";
  return query.str();
}

StatusByAddress RandomStatus(int n, uint64_t seed) {
  Rng rng(seed);
  StatusByAddress status;
  auto fill = [&](const std::string& name) {
    StatusReport report;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.nic_tx_use = rng.Uniform(0, 0.9) * 1e9;
    report.nic_rx_use = rng.Uniform(0, 0.9) * 1e9;
    report.disk_read_cap = report.disk_write_cap = 3e9;
    report.disk_write_use = rng.Uniform(0, 0.5) * 3e9;
    status[name] = report;
  };
  for (int i = 1; i <= n; ++i) {
    fill("dn" + std::to_string(i));
  }
  fill("client");
  return status;
}

void BM_ParseWriteQuery(benchmark::State& state) {
  const std::string text = WriteQuery(20);
  for (auto _ : state) {
    auto query = lang::Parse(text);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_ParseWriteQuery)->Unit(benchmark::kMicrosecond);

void BM_CompileWriteQuery(benchmark::State& state) {
  auto query = lang::Parse(WriteQuery(20));
  for (auto _ : state) {
    auto compiled = lang::CompiledQuery::Compile(query.value());
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileWriteQuery)->Unit(benchmark::kMicrosecond);

void BM_HeuristicEval(benchmark::State& state) {
  auto query = lang::Parse(WriteQuery(20));
  auto compiled = lang::CompiledQuery::Compile(query.value());
  const StatusByAddress status = RandomStatus(20, 1);
  HeuristicParams params;
  for (auto _ : state) {
    auto result = EvaluateHeuristic(compiled.value(), status, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HeuristicEval)->Unit(benchmark::kMicrosecond);

void BM_FullAnswerParseAndEval(benchmark::State& state) {
  const std::string text = WriteQuery(20);
  const StatusByAddress status = RandomStatus(20, 1);
  HeuristicParams params;
  for (auto _ : state) {
    auto query = lang::Parse(text);
    auto compiled = lang::CompiledQuery::Compile(query.value());
    auto result = EvaluateHeuristic(compiled.value(), status, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullAnswerParseAndEval)->Unit(benchmark::kMicrosecond);

// The paper's 130 ms comparison point: exhaustive evaluation of the same
// query via the flow-level estimator (20*19*18 = 6840 bindings), on the
// original engine path (per-binding topology rebuild, no memo, one thread).
void BM_BruteForceEvalSeedPath(benchmark::State& state) {
  auto query = lang::Parse(WriteQuery(20));
  auto compiled = lang::CompiledQuery::Compile(query.value());
  const StatusByAddress status = RandomStatus(20, 1);
  FlowLevelEstimator estimator(0.1, /*reuse_scratch=*/false);
  ExhaustiveParams params;
  params.memoize = false;
  for (auto _ : state) {
    auto result = EvaluateExhaustive(compiled.value(), status, estimator, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BruteForceEvalSeedPath)->Unit(benchmark::kMillisecond)->Iterations(3);

// Same space on the ISSUE 1 engine: prepared scratch + signature memo,
// serial (defaults).
void BM_BruteForceEval(benchmark::State& state) {
  auto query = lang::Parse(WriteQuery(20));
  auto compiled = lang::CompiledQuery::Compile(query.value());
  const StatusByAddress status = RandomStatus(20, 1);
  FlowLevelEstimator estimator;
  for (auto _ : state) {
    auto result = EvaluateExhaustive(compiled.value(), status, estimator);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BruteForceEval)->Unit(benchmark::kMillisecond)->Iterations(3);

// And sharded over the worker pool (0 = hardware concurrency).
void BM_BruteForceEvalParallel(benchmark::State& state) {
  auto query = lang::Parse(WriteQuery(20));
  auto compiled = lang::CompiledQuery::Compile(query.value());
  const StatusByAddress status = RandomStatus(20, 1);
  FlowLevelEstimator estimator;
  ExhaustiveParams params;
  params.threads = 0;
  for (auto _ : state) {
    auto result = EvaluateExhaustive(compiled.value(), status, estimator, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BruteForceEvalParallel)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_HeuristicEvalLargePool(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::ostringstream text;
  text << "r1 = r2 = r3 = (";
  for (int i = 1; i <= n; ++i) {
    text << "dn" << i << " ";
  }
  text << ")\nf1 client -> r1 size 256M\nf2 r1 -> r2 size 256M\nf3 r2 -> r3 size 256M\n";
  auto query = lang::Parse(text.str());
  auto compiled = lang::CompiledQuery::Compile(query.value());
  const StatusByAddress status = RandomStatus(n, 1);
  HeuristicParams params;
  for (auto _ : state) {
    auto result = EvaluateHeuristic(compiled.value(), status, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HeuristicEvalLargePool)->Arg(100)->Arg(300)->Arg(1000)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
