// Ablation: speculative reduce execution (Section 5.3).
//
// The paper leans on Hadoop's speculative execution to cover for slow nodes
// ("covered to a certain degree by the use of speculative execution") and
// credits CloudTalk with making it less necessary ("it's less likely that
// one or more reduces will require speculative execution").
//
// Scenario: two cluster nodes are on the receiving end of line-rate UDP
// blasts (from outside the Hadoop cluster) before the job starts. A reduce
// placed there crawls through its shuffle. Baseline scheduling lands
// reduces on them and needs speculation to recover; CloudTalk never places
// reduces there in the first place.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"
#include "src/mapred/mini_mapreduce.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

struct Row {
  double finish = 0;
  int speculative = 0;
  bool ok = false;
};

Row RunSort(bool use_cloudtalk, bool speculation, uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(LocalGigabitCluster(22), options);  // 20 workers + 2 blasters.
  cluster.StartStatusSweep();

  std::vector<NodeId> workers;
  for (int i = 0; i < 20; ++i) {
    workers.push_back(cluster.host(i));
  }
  // Line-rate UDP into two worker nodes; their downlinks are nearly dead.
  cluster.AddBackgroundPair(cluster.host(20), cluster.host(4), 950 * kMbps);
  cluster.AddBackgroundPair(cluster.host(21), cluster.host(5), 950 * kMbps);
  cluster.RunUntil(0.5);

  HdfsOptions hdfs_options;
  hdfs_options.block_size = 64 * kMB;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  hdfs_options.datanodes = workers;
  MiniHdfs hdfs(&cluster, hdfs_options);
  const int blocks = 40;
  std::vector<std::vector<NodeId>> replicas(blocks);
  for (int b = 0; b < blocks; ++b) {
    for (int r = 0; r < 3; ++r) {
      replicas[b].push_back(workers[(b + r * 7) % 20]);
    }
  }
  hdfs.InstallFile("input", static_cast<Bytes>(blocks) * 64 * kMB, std::move(replicas));

  MapRedOptions mr_options;
  mr_options.cloudtalk_reduce = use_cloudtalk;
  mr_options.nodes = workers;
  mr_options.write_output = false;  // Isolate the shuffle effect.
  mr_options.speculative_reduces = speculation;
  mr_options.speculation_slowdown = 1.5;
  MiniMapReduce mr(&cluster, &hdfs, mr_options);
  Row row;
  mr.RunJob("input", 16, [&](const JobStats& stats) {
    row.finish = stats.finished - stats.started;
    row.speculative = stats.speculative_launches;
    row.ok = true;
  });
  cluster.RunUntil(cluster.now() + 3600 * 2);
  return row;
}

}  // namespace

int main() {
  PrintHeader("Ablation: speculative reduces with two UDP-blasted nodes");
  std::printf("%-12s %-12s %12s %14s\n", "scheduler", "speculation", "avg finish",
              "spec launches");
  const int seeds = QuickMode() ? 5 : 15;
  for (const bool cloudtalk : {false, true}) {
    for (const bool speculation : {false, true}) {
      double finish = 0;
      int launches = 0;
      int ok = 0;
      for (int s = 0; s < seeds; ++s) {
        const Row row = RunSort(cloudtalk, speculation, 71 + s * 13);
        if (row.ok) {
          finish += row.finish;
          launches += row.speculative;
          ++ok;
        }
      }
      std::printf("%-12s %-12s %12.1f %11d/%d\n", cloudtalk ? "cloudtalk" : "baseline",
                  speculation ? "on" : "off", ok > 0 ? finish / ok : -1, launches, seeds);
    }
  }
  std::printf("\nExpected: baseline needs speculation to rescue reduces stranded on the\n"
              "blasted nodes; CloudTalk avoids them up front and speculates rarely.\n");
  return 0;
}
