// Section 5.2 "Amazon validation": sampling keeps HDFS writes fast on a
// 301-node cluster when 70% of the servers are busy.
//
// Protocol: 301 EC2-style instances. 70% of the 300 non-writer servers
// exchange line-rate iperf traffic. One writer repeatedly writes a 256 MB
// block (first replica local, two remote — d = 2 choices). CloudTalk probes
// only 19 randomly chosen servers per query (the Figure 4 prediction for
// d = 2, 30% idle, 99% confidence).
//
// Paper numbers: without CloudTalk the average write takes ~40 s (vs ~4 s
// idle); with CloudTalk + sampling, 2649/2675 writes finished under 4 s and
// fewer than 1% were slow, matching the analysis.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/status/sampling.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

struct Outcome {
  std::vector<double> durations;
  double idle_time = 0;  // Baseline write time on an idle cluster.
};

Outcome RunWrites(bool use_cloudtalk, int sample_override, int writes, uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  if (sample_override > 0) {
    options.server.sample_override = sample_override;
    options.server.sample_threshold = sample_override;
  }
  Cluster cluster(Ec2Cluster(301), options);
  cluster.StartStatusSweep();

  // The idle-cluster reference: one chained 256 MB write at 500 Mbps.
  Outcome outcome;
  outcome.idle_time = TransferTime(256 * kMB, 500 * kMbps);

  // 70% of the 300 non-writer servers exchange line-rate traffic in pairs.
  Rng rng(seed * 31 + 5);
  std::vector<int> others;
  for (int i = 1; i < 301; ++i) {
    others.push_back(i);
  }
  rng.Shuffle(others);
  const int busy = 210;  // 70% of 300.
  for (int i = 0; i + 1 < busy; i += 2) {
    const NodeId a = cluster.host(others[i]);
    const NodeId b = cluster.host(others[i + 1]);
    cluster.AddBackgroundPair(a, b, 500 * kMbps);
    cluster.AddBackgroundPair(b, a, 500 * kMbps);
  }
  cluster.RunUntil(0.5);

  HdfsOptions hdfs_options;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  MiniHdfs hdfs(&cluster, hdfs_options);

  // Sequential writes with 0-3 s pauses.
  int written = 0;
  std::function<void()> write_next = [&] {
    if (written >= writes) {
      return;
    }
    const Seconds gap = rng.Uniform(0, 3.0);
    cluster.sim().Schedule(cluster.now() + gap, [&] {
      hdfs.WriteFile(cluster.host(0), "w" + std::to_string(written++), 256 * kMB,
                     [&](Seconds start, Seconds end) {
                       outcome.durations.push_back(end - start);
                       write_next();
                     });
    });
  };
  write_next();
  cluster.RunUntil(cluster.now() + 3600 * 4);
  return outcome;
}

void Report(const char* label, const Outcome& outcome) {
  int fast = 0;
  int medium = 0;
  int slow = 0;
  int awful = 0;
  const double fast_cut = outcome.idle_time * 1.25;  // "under 4 seconds" band.
  for (double d : outcome.durations) {
    if (d <= fast_cut) {
      ++fast;
    } else if (d <= fast_cut * 1.5) {
      ++medium;
    } else if (d <= 30) {
      ++slow;
    } else {
      ++awful;
    }
  }
  std::printf("%-28s avg %7.2fs | <=%4.1fs: %4d   <=%4.1fs: %3d   <=30s: %3d   >30s: %3d\n",
              label, Mean(outcome.durations), fast_cut, fast, fast_cut * 1.5, medium, slow,
              awful);
}

}  // namespace

int main() {
  const int writes = QuickMode() ? 60 : 400;
  const int predicted = RequiredSamples(2, 0.3, 0.99);
  PrintHeader("Section 5.2: 301-node write with sampling (70% of servers busy)");
  std::printf("idle-cluster write time: %.2f s; predicted sample size for d=2, 30%% idle, "
              "99%%: n = %d (paper used 19)\n\n",
              TransferTime(256 * kMB, 500 * kMbps), predicted);

  Report("no cloudtalk (random)", RunWrites(false, 0, writes, 11));
  Report("cloudtalk, probe 19", RunWrites(true, 19, writes, 11));
  Report("cloudtalk, probe all 300", RunWrites(true, 0, writes, 11));

  std::printf("\npaper shape: random placement ~10x slower on average; sampled CloudTalk "
              ">=99%% of writes in the fast band, matching the full-probe answer.\n");
  return 0;
}
