// Figure 6: HDFS read/write completion times vs fraction of active servers,
// with and without CloudTalk.
//
// Protocol (Section 5.3): every node owns a seed file; at each step a
// percentage of servers become active and copy three files (reads: random
// seed files to local storage; writes: new files into HDFS), with random
// 0-3 s pauses. Four panels:
//   (a) local 20-node gigabit cluster, reads  (768 MB files)
//   (b) local cluster, writes
//   (c) EC2, 100 instances at 500 Mbps, reads (512 MB files)
//   (d) EC2, writes
//
// Expected shape: reads improve 10-30% on average but ~2x at the 99th
// percentile; writes improve 1.5-2x on both average and tail; the benefit
// grows with the active fraction.
#include <cstdio>

#include "bench/experiments.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

void RunPanel(const char* title, bool ec2, HdfsLoadParams::Mode mode) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%8s | %21s | %21s | %s\n", "active", "basic avg/p99 (s)", "cloudtalk avg/p99 (s)",
              "speedup avg/p99");
  const std::vector<double> fractions =
      QuickMode() ? std::vector<double>{0.3, 0.5, 0.7} : std::vector<double>{0.1, 0.3, 0.5, 0.7};
  for (double fraction : fractions) {
    double avg[2];
    double p99[2];
    for (int use_cloudtalk = 0; use_cloudtalk < 2; ++use_cloudtalk) {
      HdfsLoadParams params;
      params.mode = mode;
      params.topology = ec2 ? [] { return Ec2Cluster(100); }
                            : [] { return LocalGigabitCluster(20); };
      params.file_size = ec2 ? 512 * kMB : 768 * kMB;
      params.active_fraction = fraction;
      params.cloudtalk = use_cloudtalk == 1;
      params.repetitions = QuickMode() ? 1 : 5;
      params.seed = 1234 + static_cast<uint64_t>(fraction * 100);
      const HdfsLoadResult result = RunHdfsLoad(params);
      avg[use_cloudtalk] = Mean(result.durations);
      p99[use_cloudtalk] = Percentile(result.durations, 99);
      if (result.unfinished > 0) {
        std::printf("  (warning: %d ops unfinished)\n", result.unfinished);
      }
    }
    std::printf("%7.0f%% | %9.2f / %9.2f | %9.2f / %9.2f | %5.2fx / %5.2fx\n", fraction * 100,
                avg[0], p99[0], avg[1], p99[1], avg[0] / avg[1], p99[0] / p99[1]);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 6: HDFS read/write under load, basic vs CloudTalk");
  RunPanel("(a) local cluster, reads", /*ec2=*/false, HdfsLoadParams::Mode::kRead);
  RunPanel("(b) local cluster, writes", /*ec2=*/false, HdfsLoadParams::Mode::kWrite);
  RunPanel("(c) EC2 (100 x 500 Mbps), reads", /*ec2=*/true, HdfsLoadParams::Mode::kRead);
  RunPanel("(d) EC2 (100 x 500 Mbps), writes", /*ec2=*/true, HdfsLoadParams::Mode::kWrite);
  std::printf(
      "\npaper shape: reads ~1.1-1.3x avg / ~2x p99; writes ~1.5-2x avg and p99.\n");
  return 0;
}
