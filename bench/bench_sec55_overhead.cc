// Section 5.5: CloudTalk network overhead accounting.
//
// Paper numbers: status request 64 B, reply 78 B; an HDFS read costs
// ~1.3 KB of probe traffic, an HDFS write on a 100-node deployment ~45 KB,
// and the reduce optimisation on a 100-node cluster with 50 reducers sends
// ~43 KB of status messages.
//
// Note: this implementation deduplicates probes across the variables of one
// query (three write-pipeline variables sharing a 100-address pool probe
// each server once). The table below shows both the measured bytes and the
// per-variable accounting the paper's numbers imply.
#include <cstdio>
#include <sstream>
#include <string>

#include "bench/experiments.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

struct Overhead {
  ProbeStats stats;
  int64_t per_variable_bytes = 0;  // Paper-style accounting.
};

Overhead Measure(Cluster& cluster, const std::string& query_text, int vars, int pool) {
  auto reply = cluster.cloudtalk().Answer(query_text);
  Overhead overhead;
  if (reply.ok()) {
    overhead.stats = reply.value().probe_stats;
  } else {
    std::fprintf(stderr, "query failed: %s\n", reply.error().ToString().c_str());
  }
  overhead.per_variable_bytes =
      static_cast<int64_t>(vars) * pool * (kProbeRequestBytes + kProbeReplyBytes);
  return overhead;
}

void Print(const char* label, const Overhead& overhead, const char* paper) {
  std::printf("%-28s %6d probes  %8.1f KB measured  %8.1f KB per-variable  (paper: %s)\n",
              label, overhead.stats.requests_sent,
              (overhead.stats.bytes_sent + overhead.stats.bytes_received) / 1024.0,
              overhead.per_variable_bytes / 1024.0, paper);
}

}  // namespace

int main() {
  PrintHeader("Section 5.5: probe traffic per query (100-node deployment)");
  std::printf("wire sizes: request %d B, reply %d B (paper: 64 B / 78 B)\n\n",
              kProbeRequestBytes, kProbeReplyBytes);

  Cluster cluster(Ec2Cluster(100));
  cluster.StartStatusSweep();
  cluster.RunUntil(0.2);

  // HDFS read: one variable over the three replicas (+ the client literal).
  {
    std::ostringstream query;
    query << "src = (" << cluster.ip(1) << " " << cluster.ip(2) << " " << cluster.ip(3)
          << ")\n";
    query << "f1 disk -> src size 256M rate r(f2)\n";
    query << "f2 src -> " << cluster.ip(0) << " size 256M rate r(f1)\n";
    Print("HDFS read (3 replicas)", Measure(cluster, query.str(), 1, 4), "~1.3 KB");
  }

  // HDFS write: three variables over the 99 other datanodes.
  {
    std::ostringstream query;
    query << "r1 = r2 = r3 = (";
    for (int i = 1; i < 100; ++i) {
      query << cluster.ip(i) << " ";
    }
    query << ")\n";
    query << "f1 " << cluster.ip(0) << " -> r1 size 256M rate r(f2)\n";
    query << "f2 r1 -> disk size 256M rate r(f1)\n";
    query << "f3 r1 -> r2 size 256M rate r(f4) transfer t(f2)\n";
    query << "f4 r2 -> disk size 256M rate r(f3)\n";
    query << "f5 r2 -> r3 size 256M rate r(f6) transfer t(f4)\n";
    query << "f6 r3 -> disk size 256M rate r(f5)\n";
    Print("HDFS write (100 nodes)", Measure(cluster, query.str(), 3, 99), "~45 KB");
  }

  // Reduce: 50 variables over 100 nodes.
  {
    std::ostringstream query;
    query << "option noreserve\n";
    for (int i = 1; i <= 50; ++i) {
      query << "x" << i << " = ";
    }
    query << "(";
    for (int i = 0; i < 100; ++i) {
      query << cluster.ip(i) << " ";
    }
    query << ")\n";
    for (int i = 1; i <= 50; ++i) {
      query << "f" << (2 * i - 1) << " 0.0.0.0 -> x" << i << " size 1G rate r(f" << (2 * i)
            << ")\n";
      query << "f" << (2 * i) << " x" << i << " -> disk size 1G rate r(f" << (2 * i - 1)
            << ")\n";
    }
    Print("reduce (50 vars, 100 nodes)", Measure(cluster, query.str(), 50, 100), "~43 KB");
  }

  std::printf("\nRelative cost: a 64 MB block transfer is 64 MiB; the read query's probe\n"
              "traffic is ~0.002%% of it, matching the paper's negligible-overhead claim.\n");
  return 0;
}
