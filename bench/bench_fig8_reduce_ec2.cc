// Figure 8: reduce placement under incoming UDP traffic, EC2.
//
// Same protocol as Figure 7 on the EC2 profile: a 58-instance Hadoop
// cluster (500 Mbps per VM), 256 MB of input per node, with outside
// instances blasting UDP at 10-70% of the cluster. Output writes stay
// unoptimised (as in the paper), so job completion is noisier than the
// shuffle metric the figure reports.
//
// Expected shape: shuffle duration reduced by 1.1x to 2x with CloudTalk.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

int main() {
  PrintHeader("Figure 8: reduce placement vs UDP-loaded nodes (EC2, 58 instances)");
  std::printf("%8s | %23s | %23s | %s\n", "loaded", "baseline job/shuffle (s)",
              "cloudtalk job/shuffle (s)", "shuffle speedup");
  const std::vector<double> fractions =
      QuickMode() ? std::vector<double>{0.3, 0.7} : std::vector<double>{0.1, 0.3, 0.5, 0.7};
  const int seeds = QuickMode() ? 2 : 5;
  for (double fraction : fractions) {
    double job[2] = {0, 0};
    double shuffle[2] = {0, 0};
    for (int use_cloudtalk = 0; use_cloudtalk < 2; ++use_cloudtalk) {
      std::vector<double> jobs;
      std::vector<double> shuffles;
      for (int seed_index = 0; seed_index < seeds; ++seed_index) {
        ReduceExperimentParams params;
        params.cluster_size = 58;
        params.sender_count = 42;
        params.udp_target_fraction = fraction;
        params.input_per_node = 256 * kMB;
        params.ec2 = true;
        params.cloudtalk = use_cloudtalk == 1;
        params.seed = 203 + seed_index * 67 + static_cast<uint64_t>(fraction * 10);
        const ReduceExperimentResult result = RunReduceExperiment(params);
        if (result.finished) {
          jobs.push_back(result.job_time);
          shuffles.push_back(result.avg_shuffle);
        }
      }
      job[use_cloudtalk] = Mean(jobs);
      shuffle[use_cloudtalk] = Mean(shuffles);
    }
    std::printf("%7.0f%% | %11.1f / %9.1f | %11.1f / %9.1f | %10.2fx\n", fraction * 100,
                job[0], shuffle[0], job[1], shuffle[1],
                shuffle[1] > 0 ? shuffle[0] / shuffle[1] : 0.0);
  }
  std::printf("\npaper shape: shuffle duration reduced by a factor of 1.1 to 2.\n");
  return 0;
}
