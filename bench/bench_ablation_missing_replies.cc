// Ablation: how missing probe replies are interpreted (DESIGN.md #5).
//
// The paper's rule: "If nothing is received from a status server, we assume
// that a particular address is under heavy I/O load." The alternative —
// assuming silence means idle — recommends unknown servers precisely when
// the network is too congested to answer, which is when they are most
// likely busy.
//
// The bench runs the Figure 6(b) write workload at 50% active servers over
// a lossy probe transport (half of all replies dropped) under both rules.
//
// Expected shape: assume-loaded degrades gracefully toward random placement
// among the known-idle servers; assume-idle's tail latency blows up.
#include <cstdio>

#include "bench/experiments.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

int main() {
  PrintHeader("Ablation: missing probe replies (50% reply loss), write workload");
  std::printf("%-28s %12s %12s\n", "rule", "avg (s)", "p99 (s)");
  for (const bool assume_loaded : {true, false}) {
    HdfsLoadParams params;
    params.mode = HdfsLoadParams::Mode::kWrite;
    params.topology = [] { return LocalGigabitCluster(20); };
    params.active_fraction = 0.5;
    params.cloudtalk = true;
    params.repetitions = QuickMode() ? 1 : 3;
    params.seed = 909;
    params.configure = [assume_loaded](ClusterOptions& options) {
      options.transport.base_loss = 0.5;
      options.server.assume_loaded_on_missing = assume_loaded;
    };
    const HdfsLoadResult result = RunHdfsLoad(params);
    std::printf("%-28s %12.2f %12.2f\n",
                assume_loaded ? "assume loaded (paper)" : "assume idle (ablation)",
                Mean(result.durations), Percentile(result.durations, 99));
  }
  // Lossless reference.
  HdfsLoadParams params;
  params.mode = HdfsLoadParams::Mode::kWrite;
  params.topology = [] { return LocalGigabitCluster(20); };
  params.active_fraction = 0.5;
  params.cloudtalk = true;
  params.repetitions = QuickMode() ? 1 : 3;
  params.seed = 909;
  const HdfsLoadResult result = RunHdfsLoad(params);
  std::printf("%-28s %12.2f %12.2f\n", "no loss (reference)", Mean(result.durations),
              Percentile(result.durations, 99));
  return 0;
}
