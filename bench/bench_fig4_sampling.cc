// Figure 4: evaluating the accuracy of distributed sampling.
//
// Paper setup (Section 5.2): N = 100,000 servers, each idle with
// probability 30% (load 0%) or busy (load 100%) with probability 70%. For a
// query needing d idle servers, how many random probes n are required so
// that at least d of the probed servers are idle with confidence 90% / 99%
// / 99.9%? Both the analytic answer (binomial tail) and a Monte Carlo
// validation over the finite population are printed.
//
// Expected shape: n grows sub-linearly in d (~4 probes per needed server at
// 30% idle / 99%), and does not depend on N.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/status/sampling.h"

using namespace cloudtalk;

namespace {

// Monte Carlo: empirical probability that a random n-sample of the finite
// population contains >= d idle servers.
double EmpiricalSuccess(int population, double idle_fraction, int n, int d, int trials,
                        Rng& rng) {
  // The population is i.i.d., so sampling without replacement from a fresh
  // random population equals drawing hypergeometric with random K; for
  // N >> n this matches the binomial model the analysis uses.
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    int idle = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(idle_fraction)) {
        ++idle;
      }
    }
    (void)population;
    if (idle >= d) {
      ++successes;
    }
  }
  return static_cast<double>(successes) / trials;
}

}  // namespace

int main() {
  const double kIdle = 0.3;  // 70% of servers busy.
  const std::vector<double> confidences = {0.90, 0.99, 0.999};
  const std::vector<int> needed = {1, 2, 3, 5, 10, 15, 20, 25};
  const int trials = bench::QuickMode() ? 2000 : 50000;

  bench::PrintHeader("Figure 4: probes needed (n) vs servers required (d)");
  std::printf("(30%% of servers idle; N = 100,000; paper: d<=5 needs 10-25 probes at 99%%)\n\n");
  std::printf("%6s", "d");
  for (double c : confidences) {
    std::printf("   n@%4.1f%% (mc)", c * 100);
  }
  std::printf("\n");

  Rng rng(7);
  for (int d : needed) {
    std::printf("%6d", d);
    for (double confidence : confidences) {
      const int n = RequiredSamples(d, kIdle, confidence);
      const double empirical = EmpiricalSuccess(100000, kIdle, n, d, trials, rng);
      std::printf("   %5d (%4.1f%%)", n, empirical * 100);
    }
    std::printf("\n");
  }

  // The per-needed-server ratio for different idle fractions (Section 4.3:
  // "if 70% of servers are idle, we only need to ask 1.6 servers for each
  // server we use; if only 10% are idle, we need as many as 20").
  std::printf("\nprobes per needed server (d = 5, 99%% confidence):\n");
  for (double idle : {0.7, 0.5, 0.3, 0.1}) {
    const int n = RequiredSamples(5, idle, 0.99);
    std::printf("  idle fraction %3.0f%%: n = %4d  (%.1f probes per server)\n", idle * 100, n,
                n / 5.0);
  }
  return 0;
}
