// Figure 7: reduce placement under incoming UDP traffic, local cluster.
//
// Protocol (Section 5.3, "Reduce"): a 10-node Hadoop cluster sorts
// 512 MB/node; machines outside the cluster blast UDP iperf at a varying
// subset of the cluster nodes (10-70% of cluster size). The MapReduce
// scheduler spreads reduces blindly; CloudTalk steers them away from the
// blasted receivers. Job completion also includes output writes to HDFS,
// which are *not* optimised (as in the paper), so job time is noisier than
// shuffle time.
//
// Expected shape: CloudTalk shortens the shuffles and, through them, job
// completion; the benefit grows with the number of blasted nodes.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

int main() {
  PrintHeader("Figure 7: reduce placement vs UDP-loaded nodes (local, 10-node cluster)");
  std::printf("%8s | %23s | %23s\n", "loaded", "baseline job/shuffle (s)",
              "cloudtalk job/shuffle (s)");
  const std::vector<double> fractions =
      QuickMode() ? std::vector<double>{0.3, 0.5, 0.7}
                  : std::vector<double>{0.1, 0.3, 0.5, 0.7};
  const int seeds = QuickMode() ? 3 : 7;
  for (double fraction : fractions) {
    double job[2] = {0, 0};
    double shuffle[2] = {0, 0};
    for (int use_cloudtalk = 0; use_cloudtalk < 2; ++use_cloudtalk) {
      std::vector<double> jobs;
      std::vector<double> shuffles;
      for (int seed_index = 0; seed_index < seeds; ++seed_index) {
        ReduceExperimentParams params;
        params.cluster_size = 10;
        params.sender_count = 10;
        params.udp_target_fraction = fraction;
        params.input_per_node = 512 * kMB;
        params.cloudtalk = use_cloudtalk == 1;
        params.seed = 97 + seed_index * 71 + static_cast<uint64_t>(fraction * 10);
        const ReduceExperimentResult result = RunReduceExperiment(params);
        if (result.finished) {
          jobs.push_back(result.job_time);
          shuffles.push_back(result.avg_shuffle);
        }
      }
      job[use_cloudtalk] = Mean(jobs);
      shuffle[use_cloudtalk] = Mean(shuffles);
    }
    std::printf("%7.0f%% | %11.1f / %9.1f | %11.1f / %9.1f\n", fraction * 100, job[0],
                shuffle[0], job[1], shuffle[1]);
  }
  std::printf("\npaper shape: CloudTalk jobs finish faster because shuffles avoid the "
              "UDP-blasted receivers.\n");
  return 0;
}
