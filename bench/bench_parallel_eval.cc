// ISSUE 1 acceptance: serial-vs-parallel exhaustive evaluation on the
// Table 2 daisy-chain workload.
//
// Three engine configurations are timed over the identical binding space:
//   seed      — the original path: one thread, a throwaway star topology and
//               FluidSimulation rebuilt for every binding, no memo.
//   serial    — one thread, prepared scratch + signature memo.
//   parallel  — N shards (default 4, CLOUDTALK_EVAL_THREADS overrides),
//               thread-local estimators, scratch + memo.
// All three must return byte-identical bindings and makespans (the engine's
// deterministic merge); the bench exits non-zero if they do not.
//
// Output ends with one machine-readable JSON line; pass a path argument to
// also write that line to a file (CI stores it as BENCH_eval.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;

namespace {

// The Section 5.1 daisy chain: x1 = ... = xd = (s1 ... sn); f_i: x_i -> x_{i+1}.
std::string DaisyChainQuery(int n, int d) {
  std::ostringstream query;
  for (int i = 1; i <= d; ++i) {
    query << "x" << i << " = ";
  }
  query << "(";
  for (int i = 1; i <= n; ++i) {
    query << "s" << i << " ";
  }
  query << ")\n";
  for (int i = 1; i + 1 <= d; ++i) {
    query << "f" << i << " x" << i << " -> x" << (i + 1) << " size 100M";
    if (i > 1) {
      query << " transfer t(f" << (i - 1) << ")";
    }
    query << "\n";
  }
  return query.str();
}

StatusByAddress RandomStatus(int n, uint64_t seed) {
  Rng rng(seed);
  StatusByAddress status;
  for (int i = 1; i <= n; ++i) {
    StatusReport report;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.nic_tx_use = rng.Uniform(0, 0.9) * 1e9;
    report.nic_rx_use = rng.Uniform(0, 0.9) * 1e9;
    report.disk_read_cap = report.disk_write_cap = 4e9;
    status["s" + std::to_string(i)] = report;
  }
  return status;
}

struct TimedRun {
  double us = 0;  // Best of `iters` runs.
  ExhaustiveResult result;
};

TimedRun TimeEval(const lang::CompiledQuery& compiled, const StatusByAddress& status,
                  int threads, bool seed_path, int iters) {
  TimedRun out;
  out.us = 1e300;
  for (int i = 0; i < iters; ++i) {
    FlowLevelEstimator estimator(0.1, /*reuse_scratch=*/!seed_path);
    ExhaustiveParams params;
    params.threads = threads;
    params.memoize = !seed_path;
    const auto begin = std::chrono::steady_clock::now();
    Result<ExhaustiveResult> result = EvaluateExhaustive(compiled, status, estimator, params);
    const auto end = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n", result.error().ToString().c_str());
      std::exit(1);
    }
    out.us = std::min(out.us, std::chrono::duration<double, std::micro>(end - begin).count());
    out.result = std::move(result.value());
  }
  return out;
}

bool Identical(const ExhaustiveResult& a, const ExhaustiveResult& b) {
  // Byte-identical makespan (no tolerance) and the same binding.
  if (std::memcmp(&a.estimate.makespan, &b.estimate.makespan, sizeof(double)) != 0) {
    return false;
  }
  if (a.binding.size() != b.binding.size()) {
    return false;
  }
  for (const auto& [var, endpoint] : a.binding) {
    const auto it = b.binding.find(var);
    if (it == b.binding.end() || !(it->second == endpoint)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = 20;
  const int d = 3;
  int threads = 4;
  if (const char* env = std::getenv("CLOUDTALK_EVAL_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }
  const int iters = bench::QuickMode() ? 3 : 10;

  bench::PrintHeader("Parallel exhaustive evaluation (daisy chain, n=20 d=3)");

  auto parsed = lang::Parse(DaisyChainQuery(n, d));
  auto compiled = lang::CompiledQuery::Compile(parsed.value());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.error().ToString().c_str());
    return 1;
  }
  const StatusByAddress status = RandomStatus(n, 42);

  const TimedRun seed = TimeEval(compiled.value(), status, 1, /*seed_path=*/true, iters);
  const TimedRun serial = TimeEval(compiled.value(), status, 1, /*seed_path=*/false, iters);
  const TimedRun parallel =
      TimeEval(compiled.value(), status, threads, /*seed_path=*/false, iters);

  const bool identical =
      Identical(seed.result, serial.result) && Identical(seed.result, parallel.result);

  std::printf("bindings scored: %lld = %lld evaluations + %lld memo hits (parallel)\n",
              static_cast<long long>(seed.result.counters.scored()),
              static_cast<long long>(parallel.result.counters.evaluations),
              static_cast<long long>(parallel.result.counters.memo_hits));
  std::printf("%-28s %12.0f us\n", "seed path (1 thread)", seed.us);
  std::printf("%-28s %12.0f us  (%.2fx)\n", "scratch+memo (1 thread)", serial.us,
              seed.us / serial.us);
  std::printf("%-28s %12.0f us  (%.2fx, %d shards)\n", "scratch+memo (parallel)", parallel.us,
              seed.us / parallel.us, parallel.result.counters.threads_used);
  std::printf("results byte-identical: %s\n", identical ? "yes" : "NO");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"parallel_eval\",\"n\":%d,\"d\":%d,\"serial_us\":%.1f,"
                "\"parallel_us\":%.1f,\"threads\":%d,\"speedup\":%.2f,\"identical\":%s}",
                n, d, seed.us, parallel.us, threads, seed.us / parallel.us,
                identical ? "true" : "false");
  std::printf("%s\n", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  return identical ? 0 : 1;
}
