// Ablation: ALTO vs CloudTalk vs random placement (Section 3.2).
//
// The paper rejects the ALTO strawman because its static network/cost maps
// carry no load information and cannot express many-to-one patterns. This
// bench runs the Figure 6 HDFS read and write workloads on an EC2-style
// cluster under all three policies.
//
// Expected shape: ALTO tracks random placement (in a full-bisection fabric
// static proximity buys ~nothing, and its determinism concentrates load);
// CloudTalk beats both because the bottleneck is current endpoint load.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/alto/alto.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

enum class Policy { kRandom, kAlto, kCloudTalk };

// A trimmed copy of the Figure 6 load protocol with a policy switch.
std::vector<double> RunLoad(HdfsLoadParams::Mode mode, Policy policy, uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(Ec2Cluster(60), options);
  cluster.StartStatusSweep();
  alto::AltoServer alto_server(&cluster.topology());

  HdfsOptions hdfs_options;
  hdfs_options.cloudtalk_reads = policy == Policy::kCloudTalk;
  hdfs_options.cloudtalk_writes = policy == Policy::kCloudTalk;
  if (policy == Policy::kAlto) {
    hdfs_options.alto = &alto_server;
  }
  MiniHdfs hdfs(&cluster, hdfs_options);

  const int n = cluster.num_hosts();
  Rng rng(seed * 31 + 7);
  // Seed one file per node.
  for (int i = 0; i < n; ++i) {
    std::vector<std::vector<NodeId>> replicas(2);
    for (int b = 0; b < 2; ++b) {
      replicas[b].push_back(cluster.host(i));
      while (replicas[b].size() < 3) {
        const NodeId candidate = cluster.host(rng.UniformInt(0, n - 1));
        if (std::find(replicas[b].begin(), replicas[b].end(), candidate) ==
            replicas[b].end()) {
          replicas[b].push_back(candidate);
        }
      }
    }
    hdfs.InstallFile("seed" + std::to_string(i), 512 * kMB, std::move(replicas));
  }

  std::vector<double> durations;
  int write_counter = 0;
  const std::vector<int> active = rng.SampleWithoutReplacement(n, n / 2);
  std::function<void(NodeId, int, uint64_t)> run_op = [&](NodeId client, int remaining,
                                                          uint64_t op_seed) {
    if (remaining == 0) {
      return;
    }
    Rng op_rng(op_seed);
    cluster.sim().Schedule(cluster.now() + op_rng.Uniform(0, 3.0), [&, client, remaining,
                                                                    op_seed] {
      auto done = [&, client, remaining, op_seed](Seconds start, Seconds end) {
        durations.push_back(end - start);
        run_op(client, remaining - 1, op_seed * 33 + 11);
      };
      if (mode == HdfsLoadParams::Mode::kRead) {
        Rng pick(op_seed ^ 0xabcdef);
        hdfs.ReadFile(client, "seed" + std::to_string(pick.UniformInt(0, n - 1)), done);
      } else {
        hdfs.WriteFile(client, "w" + std::to_string(write_counter++), 512 * kMB, done);
      }
    });
  };
  for (int index : active) {
    run_op(cluster.host(index), 3, seed * 977 + index * 131 + 1);
  }
  cluster.RunUntil(cluster.now() + 3600);
  return durations;
}

}  // namespace

int main() {
  PrintHeader("Ablation: ALTO vs CloudTalk vs random (EC2-style, 60 nodes, 50% active)");
  std::printf("%-12s | %21s | %21s\n", "policy", "reads avg/p99 (s)", "writes avg/p99 (s)");
  for (const auto& [label, policy] :
       {std::pair{"random", Policy::kRandom}, std::pair{"alto", Policy::kAlto},
        std::pair{"cloudtalk", Policy::kCloudTalk}}) {
    std::vector<double> reads = RunLoad(HdfsLoadParams::Mode::kRead, policy, 51);
    std::vector<double> writes = RunLoad(HdfsLoadParams::Mode::kWrite, policy, 51);
    std::printf("%-12s | %9.2f / %9.2f | %9.2f / %9.2f\n", label, Mean(reads),
                Percentile(reads, 99), Mean(writes), Percentile(writes, 99));
  }
  std::printf("\nExpected: ALTO ~ random or worse (static proximity, deterministic\n"
              "hotspots); CloudTalk wins because only it sees current load (Section 3.2).\n");
  return 0;
}
