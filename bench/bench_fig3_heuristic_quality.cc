// Figure 3: how close is the heuristic to optimal?
//
// Paper setup (Section 5.1): daisy chain with every endpoint a variable
// (x1 = x2 = x3 = (s1 ... s20)), evaluated over randomly generated network
// states on 20 equal-capacity servers. Outgoing/incoming background rates
// are drawn independently in [0, 90%] of link capacity — once uniformly,
// once from a bimodal distribution peaked at 0% and 90%. Background traffic
// is inelastic. The plot compares achieved write throughput (as % of the
// exhaustive-search optimum) for the heuristic and for random placement.
//
// Expected shape: heuristic close to 100% (optimal for many states, ~90%+
// on average), random placement substantially worse, with a heavier tail;
// the gap widens under the bimodal distribution.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;

namespace {

constexpr int kServers = 20;

std::string ChainQuery() {
  std::ostringstream query;
  query << "x1 = x2 = x3 = (";
  for (int i = 1; i <= kServers; ++i) {
    query << "s" << i << " ";
  }
  query << ")\n";
  query << "f1 x1 -> x2 size 100M\n";
  query << "f2 x2 -> x3 size sz(f1) transfer t(f1)\n";
  return query.str();
}

enum class LoadShape { kUniform, kBimodal };

StatusByAddress RandomState(LoadShape shape, Rng& rng) {
  StatusByAddress status;
  auto draw = [&]() -> double {
    if (shape == LoadShape::kUniform) {
      return rng.Uniform(0, 0.9);
    }
    // Bimodal: peaks at 0% and 90% utilisation.
    return rng.Bernoulli(0.5) ? rng.Uniform(0, 0.1) : rng.Uniform(0.8, 0.9);
  };
  for (int i = 1; i <= kServers; ++i) {
    StatusReport report;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.nic_tx_use = draw() * 1e9;
    report.nic_rx_use = draw() * 1e9;
    report.disk_read_cap = report.disk_write_cap = 1e12;  // Never the bottleneck.
    status["s" + std::to_string(i)] = report;
  }
  return status;
}

Binding RandomBinding(const lang::CompiledQuery& compiled, Rng& rng) {
  Binding binding;
  std::vector<int> picks = rng.SampleWithoutReplacement(kServers, 3);
  int i = 0;
  for (const lang::VarComm& var : compiled.variables()) {
    binding[var.name] = lang::Endpoint::Address("s" + std::to_string(picks[i++] + 1));
  }
  return binding;
}

struct Quality {
  std::vector<double> heuristic_pct;
  std::vector<double> random_pct;
  int heuristic_optimal_hits = 0;
};

Quality Evaluate(LoadShape shape, int states, uint64_t seed) {
  auto query = lang::Parse(ChainQuery());
  auto compiled = lang::CompiledQuery::Compile(query.value());
  FlowLevelEstimator estimator(/*min_available_fraction=*/0.0);
  Rng rng(seed);
  Quality quality;
  HeuristicParams params;
  for (int s = 0; s < states; ++s) {
    const StatusByAddress status = RandomState(shape, rng);
    auto best = EvaluateExhaustive(compiled.value(), status, estimator);
    if (!best.ok()) {
      continue;
    }
    auto heuristic = EvaluateHeuristic(compiled.value(), status, params);
    auto h_est = estimator.EstimateQuery(compiled.value(), heuristic.value().binding, status);
    auto r_est = estimator.EstimateQuery(compiled.value(), RandomBinding(compiled.value(), rng),
                                         status);
    if (!h_est.ok() || !r_est.ok()) {
      continue;
    }
    // Throughput as % of optimal = optimal makespan / achieved makespan.
    const double h_pct = 100.0 * best.value().estimate.makespan / h_est.value().makespan;
    const double r_pct = 100.0 * best.value().estimate.makespan / r_est.value().makespan;
    quality.heuristic_pct.push_back(h_pct);
    quality.random_pct.push_back(r_pct);
    if (h_pct > 99.999) {
      ++quality.heuristic_optimal_hits;
    }
  }
  return quality;
}

void Report(const char* label, const std::vector<double>& pct) {
  std::printf("  %-10s avg %6.1f%%   p10 %6.1f%%   p50 %6.1f%%   p90 %6.1f%%   min %6.1f%%\n",
              label, Mean(pct), Percentile(pct, 10), Percentile(pct, 50), Percentile(pct, 90),
              Min(pct));
}

}  // namespace

int main() {
  const int states = bench::QuickMode() ? 150 : 5000;
  bench::PrintHeader("Figure 3: heuristic vs random placement, % of exhaustive optimum");
  std::printf("(3-variable daisy chain over 20 servers; %d random states per "
              "distribution)\n", states);
  std::printf("(paper shape: heuristic near-optimal on average, random much worse, "
              "bimodal widens the gap)\n");

  for (const auto& [name, shape] :
       {std::pair{"uniform", LoadShape::kUniform}, std::pair{"bimodal", LoadShape::kBimodal}}) {
    const Quality quality = Evaluate(shape, states, shape == LoadShape::kUniform ? 11 : 23);
    std::printf("\n%s load distribution (%zu states evaluated):\n", name,
                quality.heuristic_pct.size());
    Report("heuristic", quality.heuristic_pct);
    Report("random", quality.random_pct);
    std::printf("  heuristic found the exact optimum in %d/%zu states\n",
                quality.heuristic_optimal_hits, quality.heuristic_pct.size());
  }
  return 0;
}
