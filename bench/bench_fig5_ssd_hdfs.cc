// Figure 5: HDFS over SSDs on the 10 Gbps interconnect — contention moves
// to the disks.
//
// Protocol (Section 5.3, "SSD HDFS"): a single client reads or writes a
// 4 GB file while a variable percentage of servers run a local process that
// hammers their disk (continuous large reads for the read experiment,
// repeated writes for the write experiment). With 10 Gbps networking the
// disks are the bottleneck, so CloudTalk's win comes from finding idle
// disks.
//
// Expected shape: reads improve modestly (up to ~1.2x — the paper's client
// was CPU-bound first); writes finish 1.5-2x faster with CloudTalk.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

double RunOnce(HdfsLoadParams::Mode mode, double busy_fraction, bool use_cloudtalk,
               uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(LocalTenGigCluster(20), options);
  cluster.StartStatusSweep();

  // Busy servers run a local disk hog. The hog is an ordinary elastic
  // process (it reads/writes through the filesystem like everyone else), so
  // a competing HDFS transfer still gets a fair share of the disk — it is
  // just measurably slower than an idle one.
  Rng rng(seed * 17 + 3);
  const int busy = static_cast<int>(busy_fraction * 19 + 0.5);
  const std::vector<int> chosen = rng.SampleWithoutReplacement(19, busy);
  for (int index : chosen) {
    const NodeId host = cluster.host(index + 1);  // Host 0 is the client.
    GroupSpec hog;
    FluidFlow flow;
    flow.resources = {mode == HdfsLoadParams::Mode::kRead
                          ? cluster.sim().resources().DiskRead(host)
                          : cluster.sim().resources().DiskWrite(host)};
    flow.size = 1e15;  // Effectively endless.
    hog.flows.push_back(std::move(flow));
    cluster.sim().AddGroup(std::move(hog));
  }
  cluster.RunUntil(0.5);

  HdfsOptions hdfs_options;
  hdfs_options.cloudtalk_reads = use_cloudtalk;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  // The read client is CPU-bound before it is disk-bound (Section 5.3).
  hdfs_options.read_rate_cap = 2.5 * kGbps;
  MiniHdfs hdfs(&cluster, hdfs_options);

  // For reads, seed a 4 GB file with replicas spread across the cluster.
  const int blocks = 16;  // 4 GB / 256 MB.
  if (mode == HdfsLoadParams::Mode::kRead) {
    std::vector<std::vector<NodeId>> replicas(blocks);
    for (int b = 0; b < blocks; ++b) {
      for (int r = 0; r < 3; ++r) {
        replicas[b].push_back(cluster.host(1 + (b * 3 + r) % 19));
      }
    }
    hdfs.InstallFile("big", 4 * kGB, std::move(replicas));
  }

  Seconds duration = -1;
  if (mode == HdfsLoadParams::Mode::kRead) {
    hdfs.ReadFile(cluster.host(0), "big",
                  [&](Seconds start, Seconds end) { duration = end - start; });
  } else {
    hdfs.WriteFile(cluster.host(0), "big", 4 * kGB,
                   [&](Seconds start, Seconds end) { duration = end - start; });
  }
  cluster.RunUntil(cluster.now() + 3600);
  return duration;
}

void RunPanel(const char* title, HdfsLoadParams::Mode mode) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%10s %14s %14s %10s\n", "busy disks", "basic (s)", "cloudtalk (s)", "speedup");
  const std::vector<double> fractions =
      QuickMode() ? std::vector<double>{0.2, 0.5, 0.7} : std::vector<double>{0.1, 0.2, 0.3,
                                                                             0.5, 0.7};
  for (double fraction : fractions) {
    const int reps = QuickMode() ? 2 : 5;
    std::vector<double> basic;
    std::vector<double> cloudtalk;
    for (int r = 0; r < reps; ++r) {
      basic.push_back(RunOnce(mode, fraction, false, 100 + r));
      cloudtalk.push_back(RunOnce(mode, fraction, true, 100 + r));
    }
    std::printf("%9.0f%% %14.2f %14.2f %9.2fx\n", fraction * 100, Mean(basic),
                Mean(cloudtalk), Mean(basic) / Mean(cloudtalk));
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 5: HDFS over SSDs (10 Gbps network, disk-bound)");
  RunPanel("reads: 4 GB file, busy servers hog disk reads", HdfsLoadParams::Mode::kRead);
  RunPanel("writes: 4 GB file, busy servers hog disk writes", HdfsLoadParams::Mode::kWrite);
  std::printf("\npaper shape: reads up to ~1.2x; writes 1.5-2x faster with CloudTalk.\n");
  return 0;
}
