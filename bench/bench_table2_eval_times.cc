// Table 2: heuristic evaluator running times (microseconds).
//
// Paper: daisy-chain queries with d variables over pools of n servers,
// timed at the evaluation step (status data already gathered). The paper
// reports 231 us (n=100, d=3) up to ~19.4 ms (n=2000, d=30); absolute
// numbers differ on other hardware, but times must stay in the same
// magnitude band and scale roughly linearly in n*d.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;

namespace {

// Builds the daisy-chain query of Section 5.1: x1 = ... = xd = (s1 ... sn);
// f_i: x_i -> x_{i+1}.
std::string DaisyChainQuery(int n, int d) {
  std::ostringstream query;
  for (int i = 1; i <= d; ++i) {
    query << "x" << i << " = ";
  }
  query << "(";
  for (int i = 1; i <= n; ++i) {
    query << "s" << i << " ";
  }
  query << ")\n";
  for (int i = 1; i + 1 <= d; ++i) {
    query << "f" << i << " x" << i << " -> x" << (i + 1) << " size 100M";
    if (i > 1) {
      query << " transfer t(f" << (i - 1) << ")";
    }
    query << "\n";
  }
  return query.str();
}

StatusByAddress RandomStatus(int n, Rng& rng) {
  StatusByAddress status;
  for (int i = 1; i <= n; ++i) {
    StatusReport report;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.nic_tx_use = rng.Uniform(0, 0.9) * 1e9;
    report.nic_rx_use = rng.Uniform(0, 0.9) * 1e9;
    report.disk_read_cap = report.disk_write_cap = 4e9;
    status["s" + std::to_string(i)] = report;
  }
  return status;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 2: heuristic evaluator running times (us)");
  std::printf("(paper, for reference: n=100,d=3: 231us ... n=2000,d=30: 19379us)\n\n");

  const std::vector<int> pool_sizes = {100, 200, 300, 500, 1000, 2000};
  const std::vector<int> var_counts = {3, 5, 10, 20, 30};

  std::printf("%8s", "n \\ d");
  for (int d : var_counts) {
    std::printf("%10d", d);
  }
  std::printf("\n");

  Rng rng(42);
  for (int n : pool_sizes) {
    std::printf("%8d", n);
    const StatusByAddress status = RandomStatus(n, rng);
    for (int d : var_counts) {
      auto parsed = lang::Parse(DaisyChainQuery(n, d));
      if (!parsed.ok()) {
        std::printf("%10s", "ERR");
        continue;
      }
      auto compiled = lang::CompiledQuery::Compile(parsed.value());
      if (!compiled.ok()) {
        std::printf("%10s", "ERR");
        continue;
      }
      // Time the evaluation step alone, as the paper does.
      const int iters = bench::QuickMode() ? 20 : 200;
      HeuristicParams params;
      const auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) {
        auto result = EvaluateHeuristic(compiled.value(), status, params);
        if (!result.ok()) {
          std::fprintf(stderr, "evaluation failed: %s\n", result.error().ToString().c_str());
          return 1;
        }
      }
      const auto end = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(end - begin).count() / iters;
      std::printf("%10.0f", us);
    }
    std::printf("\n");
  }
  std::printf("\nShape check: time grows ~linearly with n*d (O(max(m, n*d)) algorithm).\n");

  // Exhaustive-evaluator companion numbers (ISSUE 1): the same daisy-chain
  // workload through EvaluateExhaustive, original path vs the scratch+memo
  // engine, serial and sharded (CLOUDTALK_EVAL_THREADS, default 4).
  int threads = 4;
  if (const char* env = std::getenv("CLOUDTALK_EVAL_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }
  std::printf("\nExhaustive evaluator (us per full evaluation, d=3):\n");
  std::printf("%8s %12s %12s %12s\n", "n", "seed path", "engine x1", "engine xN");
  for (int n : {10, 20}) {
    auto parsed = lang::Parse(DaisyChainQuery(n, 3));
    auto compiled = lang::CompiledQuery::Compile(parsed.value());
    const StatusByAddress status = RandomStatus(n, rng);
    auto time_one = [&](bool seed_path, int shards) {
      FlowLevelEstimator estimator(0.1, /*reuse_scratch=*/!seed_path);
      ExhaustiveParams params;
      params.memoize = !seed_path;
      params.threads = shards;
      const auto begin = std::chrono::steady_clock::now();
      auto result = EvaluateExhaustive(compiled.value(), status, estimator, params);
      const auto end = std::chrono::steady_clock::now();
      if (!result.ok()) {
        return -1.0;
      }
      return std::chrono::duration<double, std::micro>(end - begin).count();
    };
    std::printf("%8d %12.0f %12.0f %12.0f\n", n, time_one(true, 1), time_one(false, 1),
                time_one(false, threads));
  }
  return 0;
}
