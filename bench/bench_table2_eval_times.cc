// Table 2: heuristic evaluator running times (microseconds).
//
// Paper: daisy-chain queries with d variables over pools of n servers,
// timed at the evaluation step (status data already gathered). The paper
// reports 231 us (n=100, d=3) up to ~19.4 ms (n=2000, d=30); absolute
// numbers differ on other hardware, but times must stay in the same
// magnitude band and scale roughly linearly in n*d.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;

namespace {

// Builds the daisy-chain query of Section 5.1: x1 = ... = xd = (s1 ... sn);
// f_i: x_i -> x_{i+1}.
std::string DaisyChainQuery(int n, int d) {
  std::ostringstream query;
  for (int i = 1; i <= d; ++i) {
    query << "x" << i << " = ";
  }
  query << "(";
  for (int i = 1; i <= n; ++i) {
    query << "s" << i << " ";
  }
  query << ")\n";
  for (int i = 1; i + 1 <= d; ++i) {
    query << "f" << i << " x" << i << " -> x" << (i + 1) << " size 100M";
    if (i > 1) {
      query << " transfer t(f" << (i - 1) << ")";
    }
    query << "\n";
  }
  return query.str();
}

// Busy-cluster variant: the same daisy chain evaluated while `bg` literal
// transfers (size 64M, disjoint host pairs outside the pool) are in flight.
// This is the representative delta-rebind scenario: re-binding the chain
// leaves every background trajectory untouched, so the incremental solver
// fast-forwards them instead of re-simulating per binding.
std::string BusyClusterQuery(int n, int d, int bg) {
  std::ostringstream query;
  query << DaisyChainQuery(n, d);
  for (int b = 0; b < bg; ++b) {
    query << "g" << b << " s" << (n + 1 + 2 * b) << " -> s" << (n + 2 + 2 * b)
          << " size 64M\n";
  }
  return query.str();
}

StatusByAddress RandomStatus(int n, Rng& rng) {
  StatusByAddress status;
  for (int i = 1; i <= n; ++i) {
    StatusReport report;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.nic_tx_use = rng.Uniform(0, 0.9) * 1e9;
    report.nic_rx_use = rng.Uniform(0, 0.9) * 1e9;
    report.disk_read_cap = report.disk_write_cap = 4e9;
    status["s" + std::to_string(i)] = report;
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader("Table 2: heuristic evaluator running times (us)");
  std::printf("(paper, for reference: n=100,d=3: 231us ... n=2000,d=30: 19379us)\n\n");

  const std::vector<int> pool_sizes = {100, 200, 300, 500, 1000, 2000};
  const std::vector<int> var_counts = {3, 5, 10, 20, 30};

  std::printf("%8s", "n \\ d");
  for (int d : var_counts) {
    std::printf("%10d", d);
  }
  std::printf("\n");

  Rng rng(42);
  for (int n : pool_sizes) {
    std::printf("%8d", n);
    const StatusByAddress status = RandomStatus(n, rng);
    for (int d : var_counts) {
      auto parsed = lang::Parse(DaisyChainQuery(n, d));
      if (!parsed.ok()) {
        std::printf("%10s", "ERR");
        continue;
      }
      auto compiled = lang::CompiledQuery::Compile(parsed.value());
      if (!compiled.ok()) {
        std::printf("%10s", "ERR");
        continue;
      }
      // Time the evaluation step alone, as the paper does.
      const int iters = bench::QuickMode() ? 20 : 200;
      HeuristicParams params;
      const auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) {
        auto result = EvaluateHeuristic(compiled.value(), status, params);
        if (!result.ok()) {
          std::fprintf(stderr, "evaluation failed: %s\n", result.error().ToString().c_str());
          return 1;
        }
      }
      const auto end = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(end - begin).count() / iters;
      std::printf("%10.0f", us);
    }
    std::printf("\n");
  }
  std::printf("\nShape check: time grows ~linearly with n*d (O(max(m, n*d)) algorithm).\n");

  // Exhaustive-evaluator companion numbers (ISSUE 1): the same daisy-chain
  // workload through EvaluateExhaustive, original path vs the scratch+memo
  // engine, serial and sharded (CLOUDTALK_EVAL_THREADS, default 4).
  int threads = 4;
  if (const char* env = std::getenv("CLOUDTALK_EVAL_THREADS")) {
    threads = std::max(1, std::atoi(env));
  }
  std::printf("\nExhaustive evaluator (us per full evaluation, d=3):\n");
  std::printf("%8s %12s %12s %12s\n", "n", "seed path", "engine x1", "engine xN");
  for (int n : {10, 20}) {
    auto parsed = lang::Parse(DaisyChainQuery(n, 3));
    auto compiled = lang::CompiledQuery::Compile(parsed.value());
    const StatusByAddress status = RandomStatus(n, rng);
    auto time_one = [&](bool seed_path, int shards) {
      FlowLevelEstimator estimator(0.1, /*reuse_scratch=*/!seed_path);
      ExhaustiveParams params;
      params.memoize = !seed_path;
      params.threads = shards;
      const auto begin = std::chrono::steady_clock::now();
      auto result = EvaluateExhaustive(compiled.value(), status, estimator, params);
      const auto end = std::chrono::steady_clock::now();
      if (!result.ok()) {
        return -1.0;
      }
      return std::chrono::duration<double, std::micro>(end - begin).count();
    };
    std::printf("%8d %12.0f %12.0f %12.0f\n", n, time_one(true, 1), time_one(false, 1),
                time_one(false, threads));
  }

  // Incremental delta rebind (ISSUE 6): the d=3 daisy chain with memoisation
  // off, so every enumerated binding reaches the estimator — cold re-installs
  // every group per binding, delta restores the checkpoint, patches only the
  // changed endpoints and fast-forwards the untouched trajectory closures.
  // Makespans must be bit-identical. The acceptance workload is the busy
  // cluster (n=20, d=3, 12 background transfers); its per-binding speedup is
  // recorded in BENCH_sim.json (target: >= 2x).
  const int kAcceptBg = 12;
  std::printf("\nIncremental delta rebind (us per binding, d=3, memo off):\n");
  std::printf("%8s %4s %12s %12s %10s %10s\n", "n", "bg", "cold", "delta", "speedup",
              "identical");
  double accept_cold_us = 0, accept_delta_us = 0;
  bool accept_identical = false;
  struct Workload {
    int n;
    int bg;
  };
  for (const Workload w : {Workload{10, 0}, Workload{20, 0}, Workload{20, kAcceptBg}}) {
    const int n = w.n;
    auto parsed = lang::Parse(w.bg > 0 ? BusyClusterQuery(n, 3, w.bg) : DaisyChainQuery(n, 3));
    auto compiled = lang::CompiledQuery::Compile(parsed.value());
    const StatusByAddress status = RandomStatus(n + 2 * w.bg, rng);
    struct RebindRun {
      double us_per_binding = -1;
      Estimate estimate;
    };
    auto time_rebind = [&](bool delta_rebind) {
      FlowLevelEstimator estimator(0.1, /*reuse_scratch=*/true, delta_rebind);
      ExhaustiveParams params;
      params.memoize = false;
      const auto begin = std::chrono::steady_clock::now();
      auto result = EvaluateExhaustive(compiled.value(), status, estimator, params);
      const auto end = std::chrono::steady_clock::now();
      RebindRun run;
      if (!result.ok() || result.value().counters.evaluations <= 0) {
        return run;
      }
      run.us_per_binding = std::chrono::duration<double, std::micro>(end - begin).count() /
                           static_cast<double>(result.value().counters.evaluations);
      run.estimate = result.value().estimate;
      return run;
    };
    // Interleave repetitions and keep the fastest of each: both paths are
    // short enough that one-shot timings are noise-dominated.
    const int reps = bench::QuickMode() ? 3 : 10;
    RebindRun cold_run, delta_run;
    double cold_us = -1, delta_us = -1;
    for (int r = 0; r < reps; ++r) {
      const RebindRun c = time_rebind(false);
      const RebindRun d = time_rebind(true);
      if (c.us_per_binding < 0 || d.us_per_binding < 0) {
        break;
      }
      cold_run = c;
      delta_run = d;
      cold_us = cold_us < 0 ? c.us_per_binding : std::min(cold_us, c.us_per_binding);
      delta_us = delta_us < 0 ? d.us_per_binding : std::min(delta_us, d.us_per_binding);
    }
    if (cold_us < 0 || delta_us < 0) {
      std::printf("%8d %4d %12s %12s %10s %10s\n", n, w.bg, "ERR", "ERR", "-", "-");
      continue;
    }
    // Exact comparison: the delta path must be indistinguishable from cold.
    const bool identical =
        std::memcmp(&cold_run.estimate.makespan, &delta_run.estimate.makespan,
                    sizeof(double)) == 0 &&
        std::memcmp(&cold_run.estimate.aggregate_throughput,
                    &delta_run.estimate.aggregate_throughput, sizeof(double)) == 0;
    const double speedup = delta_us > 0 ? cold_us / delta_us : 0;
    std::printf("%8d %4d %12.2f %12.2f %9.2fx %10s\n", n, w.bg, cold_us, delta_us, speedup,
                identical ? "yes" : "NO");
    if (w.bg == kAcceptBg) {
      accept_cold_us = cold_us;
      accept_delta_us = delta_us;
      accept_identical = identical;
    }
  }
  const double accept_speedup = accept_delta_us > 0 ? accept_cold_us / accept_delta_us : 0;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_sim.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\"bench\":\"table2_delta_rebind\",\"n\":20,\"d\":3,"
                 "\"background_transfers\":%d,"
                 "\"cold_us_per_binding\":%.2f,\"delta_us_per_binding\":%.2f,"
                 "\"speedup\":%.2f,\"makespans_unchanged\":%s}\n",
                 kAcceptBg, accept_cold_us, accept_delta_us, accept_speedup,
                 accept_identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s (speedup %.2fx, target >= 2x)\n", json_path.c_str(),
                accept_speedup);
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }
  return 0;
}
