// Section 3: probing and optimising in the cloud.
//
// Two studies the paper uses to motivate CloudTalk:
//
//  1. Topology inference: traceroute hop counts cluster VMs into racks
//     (what the authors did to EC2 in 2011). Static topology info is easy
//     to extract — and insufficient for load-sensitive placement.
//
//  2. The cost and unreliability of capacity probing: as more tenants probe
//     concurrently, (a) probe traffic grows linearly, (b) each tenant's
//     measured capacity diverges from the truth because probes contend with
//     each other, and (c) innocent foreground traffic slows down.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"
#include "src/probing/prober.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

int main() {
  // ---- Part 1: topology inference ----
  PrintHeader("Section 3.1: rack inference from traceroute hop counts");
  Vl2Params params;
  params.num_racks = 10;
  params.hosts_per_rack = 10;
  const Topology topo = MakeVl2(params);
  probing::NetworkProber prober(&topo);
  const std::vector<NodeId> hosts = topo.hosts();
  const auto hops = prober.HopMatrix(hosts);
  const std::vector<int> inferred = probing::InferRacks(hops);
  const double accuracy = probing::RackInferenceAccuracy(topo, hosts, inferred);
  const int traceroutes = static_cast<int>(hosts.size() * (hosts.size() - 1));
  std::printf("100 VMs, %d traceroutes: same-rack/different-rack inference accuracy %.1f%%\n",
              traceroutes, accuracy * 100);
  std::printf("(paper: hop counts and RTTs reveal host/rack/subnet locality even in 2015)\n");

  // ---- Part 2: concurrent capacity probing ----
  PrintHeader("Section 3.1: capacity probing cost and interference");
  std::printf("%10s %16s %18s %18s\n", "tenants", "probe GB sent", "avg measured Mbps",
              "victim slowdown");
  const Bytes probe_bytes = 50 * kMB;
  for (int tenants : {1, 2, 4, 8, 16}) {
    SingleSwitchParams cluster_params;
    cluster_params.num_hosts = 40;
    const Topology cluster = MakeSingleSwitch(cluster_params);
    FluidSimulation sim(&cluster);

    // An innocent tenant's transfer.
    Seconds victim_done = -1;
    GroupSpec victim;
    FluidFlow flow;
    flow.resources =
        sim.resources().NetworkPath(cluster, cluster.hosts()[0], cluster.hosts()[1]);
    flow.size = 100 * kMB;
    victim.flows.push_back(std::move(flow));
    sim.AddGroup(std::move(victim), [&](GroupId, Seconds t) { victim_done = t; });

    // Each probing tenant measures the path into host 1's rack-mate — all
    // probes funnel into a small set of destinations, as cloud-wide probing
    // against popular subnets would.
    std::vector<double> measured;
    for (int t = 0; t < tenants; ++t) {
      const NodeId src = cluster.hosts()[2 + t];
      const NodeId dst = cluster.hosts()[1 + (t % 2)];
      probing::StartCapacityProbe(&sim, src, dst, probe_bytes,
                                  [&measured](Bps bw) { measured.push_back(bw / 1e6); });
    }
    sim.RunUntilIdle();

    const Seconds victim_alone = TransferTime(100 * kMB, 1e9);
    std::printf("%10d %16.2f %18.0f %17.2fx\n", tenants,
                tenants * probe_bytes / 1e9, Mean(measured), victim_done / victim_alone);
  }
  std::printf(
      "\npaper shape: probe cost grows linearly with tenants; overlapping probes\n"
      "underestimate capacity (each sees a fair share, not the truth); innocent\n"
      "traffic slows — why providers moved to strict isolation instead.\n");
  return 0;
}
