// ISSUE 4 acceptance: static optimisation passes vs. the unoptimised walk.
//
// Workload: a fan-out shuffle with four interchangeable workers drawn from a
// sixteen-host pool, all shards in one chain group (the shape O200 prunes
// hardest: 16*15*14*13 = 43680 ordered bindings collapse to C(16,4) = 1820
// ascending representatives). Both engine configurations run over the
// identical query and status:
//   unoptimised — optimize = false, the PR 1 engine behaviour.
//   optimised   — optimize = true, the O100..O400 plan applied.
// The bench fails (exit non-zero) unless the two return byte-identical
// bindings and makespans AND the optimised walk enumerates at least 5x
// fewer bindings — the ISSUE 4 acceptance floor (the shape above gives 24x).
//
// Output ends with one machine-readable JSON line; pass a path argument to
// also write that line to a file (CI stores it as BENCH_opt.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;

namespace {

// w workers over an n-host pool, one shard each, chained into a single rate
// group so the workers are provably interchangeable (same shape as
// examples/queries/opt/symmetric_workers.ct).
std::string SymmetricShuffleQuery(int n, int w) {
  std::ostringstream query;
  query << "option packet\n";
  for (int i = 1; i <= w; ++i) {
    query << "W" << i << " = ";
  }
  query << "(";
  for (int i = 1; i <= n; ++i) {
    query << "10.0.1." << i << " ";
  }
  query << ")\n";
  for (int i = 1; i <= w; ++i) {
    query << "shard" << i << " 10.0.0.9 -> W" << i << " size 64M ";
    query << (i == 1 ? "rate 800M" : "rate r(shard1)") << "\n";
  }
  return query.str();
}

StatusByAddress RandomStatus(int n, uint64_t seed) {
  Rng rng(seed);
  StatusByAddress status;
  auto report = [&](double tx_frac, double rx_frac) {
    StatusReport r;
    r.nic_tx_cap = r.nic_rx_cap = 1e9;
    r.nic_tx_use = tx_frac * 1e9;
    r.nic_rx_use = rx_frac * 1e9;
    r.disk_read_cap = r.disk_write_cap = 4e9;
    return r;
  };
  for (int i = 1; i <= n; ++i) {
    status["10.0.1." + std::to_string(i)] = report(rng.Uniform(0, 0.9), rng.Uniform(0, 0.9));
  }
  status["10.0.0.9"] = report(0, 0);
  return status;
}

struct TimedRun {
  double us = 0;  // Best of `iters` runs.
  ExhaustiveResult result;
};

TimedRun TimeEval(const lang::CompiledQuery& compiled, const StatusByAddress& status,
                  bool optimize, int iters) {
  TimedRun out;
  out.us = 1e300;
  for (int i = 0; i < iters; ++i) {
    FlowLevelEstimator estimator;
    ExhaustiveParams params;
    params.optimize = optimize;
    const auto begin = std::chrono::steady_clock::now();
    Result<ExhaustiveResult> result = EvaluateExhaustive(compiled, status, estimator, params);
    const auto end = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n", result.error().ToString().c_str());
      std::exit(1);
    }
    out.us = std::min(out.us, std::chrono::duration<double, std::micro>(end - begin).count());
    out.result = std::move(result.value());
  }
  return out;
}

bool Identical(const ExhaustiveResult& a, const ExhaustiveResult& b) {
  // Byte-identical makespan (no tolerance) and the same binding.
  if (std::memcmp(&a.estimate.makespan, &b.estimate.makespan, sizeof(double)) != 0) {
    return false;
  }
  if (a.binding.size() != b.binding.size()) {
    return false;
  }
  for (const auto& [var, endpoint] : a.binding) {
    const auto it = b.binding.find(var);
    if (it == b.binding.end() || !(it->second == endpoint)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = 16;
  const int w = 4;
  const int iters = bench::QuickMode() ? 2 : 5;

  bench::PrintHeader("Static optimisation pruning (symmetric shuffle, n=16 w=4)");

  auto parsed = lang::Parse(SymmetricShuffleQuery(n, w));
  auto compiled = lang::CompiledQuery::Compile(parsed.value());
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.error().ToString().c_str());
    return 1;
  }
  const StatusByAddress status = RandomStatus(n, 42);

  const TimedRun base = TimeEval(compiled.value(), status, /*optimize=*/false, iters);
  const TimedRun opt = TimeEval(compiled.value(), status, /*optimize=*/true, iters);

  const bool identical = Identical(base.result, opt.result);
  const double reduction = static_cast<double>(base.result.counters.enumerated) /
                           static_cast<double>(std::max<int64_t>(1, opt.result.counters.enumerated));
  const bool pruned_enough = reduction >= 5.0;

  std::printf("bindings enumerated: %lld unoptimised vs %lld optimised (%.1fx, %lld orbit skips)\n",
              static_cast<long long>(base.result.counters.enumerated),
              static_cast<long long>(opt.result.counters.enumerated), reduction,
              static_cast<long long>(opt.result.counters.orbit_skips));
  std::printf("%-28s %12.0f us\n", "unoptimised walk", base.us);
  std::printf("%-28s %12.0f us  (%.2fx)\n", "with O100..O400 plan", opt.us, base.us / opt.us);
  std::printf("results byte-identical: %s\n", identical ? "yes" : "NO");
  std::printf("reduction >= 5x: %s\n", pruned_enough ? "yes" : "NO");

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"opt_pruning\",\"n\":%d,\"w\":%d,"
                "\"enumerated_base\":%lld,\"enumerated_opt\":%lld,\"reduction\":%.2f,"
                "\"base_us\":%.1f,\"opt_us\":%.1f,\"speedup\":%.2f,\"identical\":%s}",
                n, w, static_cast<long long>(base.result.counters.enumerated),
                static_cast<long long>(opt.result.counters.enumerated), reduction, base.us,
                opt.us, base.us / opt.us, identical ? "true" : "false");
  std::printf("%s\n", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  return (identical && pruned_enough) ? 0 : 1;
}
