// Figure 12: preventing oscillatory behaviour with pseudo-reservations.
//
// Protocol (Section 5.5): the EC2 HDFS write scenario — active servers each
// copy three files to the DFS with 0-3 s pauses; all placement queries go
// through the (centralized) NameNode's CloudTalk server, whose status data
// is stale by up to the measurement period. Without reservations, bursts of
// queries inside one staleness window all get the same "idle" servers; the
// bars labelled Osc in the paper show the 99th percentile blowing up to
// ~10x the average. Holding recommended endpoints for t = 300 ms collapses
// the tail to ~2x the average.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

int main() {
  PrintHeader("Figure 12: EC2 HDFS writes, reservation hold 0 (Osc) vs 300 ms");
  std::printf("%8s | %21s | %21s\n", "active", "Osc avg/p99 (s)", "reserved avg/p99 (s)");

  const std::vector<double> fractions =
      QuickMode() ? std::vector<double>{0.3, 0.5, 0.7}
                  : std::vector<double>{0.1, 0.3, 0.5, 0.7};
  for (double fraction : fractions) {
    double avg[2];
    double p99[2];
    for (int mode = 0; mode < 2; ++mode) {
      HdfsLoadParams params;
      params.mode = HdfsLoadParams::Mode::kWrite;
      params.topology = [] { return Ec2Cluster(100); };
      params.file_size = 512 * kMB;
      params.active_fraction = fraction;
      params.cloudtalk = true;
      params.reservation_hold = mode == 0 ? 0.0 : 300 * kMillisecond;
      params.repetitions = QuickMode() ? 1 : 3;
      params.seed = 555 + static_cast<uint64_t>(fraction * 10);
      // "The loaded state of previously recommended servers only becomes
      // apparent after a delay which depends on both the requesting
      // application, and the measurement frequency" — the experiment uses a
      // 500 ms measurement period so that delay is visible.
      params.configure = [](ClusterOptions& options) {
        options.status_period = 500 * kMillisecond;
      };
      const HdfsLoadResult result = RunHdfsLoad(params);
      avg[mode] = Mean(result.durations);
      p99[mode] = Percentile(result.durations, 99);
    }
    std::printf("%7.0f%% | %9.2f / %9.2f | %9.2f / %9.2f\n", fraction * 100, avg[0], p99[0],
                avg[1], p99[1]);
  }
  std::printf("\npaper shape: without reservations the 99th percentile grows to ~10x the "
              "average as more servers become active; with t = 300 ms it stays ~2x.\n");
  return 0;
}
