// Unit tests for the datacenter topology model and builders.
#include <gtest/gtest.h>

#include <set>

#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

TEST(TopologyTest, SingleSwitchShape) {
  SingleSwitchParams params;
  params.num_hosts = 20;
  const Topology topo = MakeSingleSwitch(params);
  EXPECT_EQ(topo.hosts().size(), 20u);
  EXPECT_EQ(topo.num_nodes(), 21);          // 20 hosts + 1 switch.
  EXPECT_EQ(topo.num_links(), 40);          // 20 duplex cables.
}

TEST(TopologyTest, HostsGetUniqueIps) {
  const Topology topo = MakeSingleSwitch({});
  std::set<std::string> ips;
  for (NodeId h : topo.hosts()) {
    ips.insert(topo.IpOf(h));
    EXPECT_EQ(topo.HostByIp(topo.IpOf(h)), h);
  }
  EXPECT_EQ(ips.size(), topo.hosts().size());
  EXPECT_EQ(topo.HostByIp("1.2.3.4"), kInvalidNode);
}

TEST(TopologyTest, PathThroughSingleSwitch) {
  const Topology topo = MakeSingleSwitch({});
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  const std::vector<LinkId> path = topo.PathBetween(a, b);
  ASSERT_EQ(path.size(), 2u);  // host->switch, switch->host.
  EXPECT_EQ(topo.link(path[0]).from, a);
  EXPECT_EQ(topo.link(path[1]).to, b);
}

TEST(TopologyTest, PathToSelfIsEmpty) {
  const Topology topo = MakeSingleSwitch({});
  EXPECT_TRUE(topo.PathBetween(topo.hosts()[0], topo.hosts()[0]).empty());
}

TEST(TopologyTest, Vl2SameRackPathStaysUnderTor) {
  Vl2Params params;
  params.num_racks = 4;
  params.hosts_per_rack = 10;
  const Topology topo = MakeVl2(params);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  ASSERT_TRUE(topo.SameRack(a, b));
  EXPECT_EQ(topo.PathBetween(a, b).size(), 2u);  // host->tor->host.
}

TEST(TopologyTest, Vl2CrossRackPathClimbsToAgg) {
  Vl2Params params;
  params.num_racks = 4;
  params.hosts_per_rack = 10;
  const Topology topo = MakeVl2(params);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[params.hosts_per_rack];  // First host of rack 1.
  ASSERT_FALSE(topo.SameRack(a, b));
  // host->tor->agg->tor->host = 4 hops (aggs connect all racks directly).
  EXPECT_EQ(topo.PathBetween(a, b).size(), 4u);
}

TEST(TopologyTest, EcmpSaltSpreadsPaths) {
  Vl2Params params;
  params.num_racks = 4;
  params.hosts_per_rack = 2;
  params.num_aggs = 4;
  const Topology topo = MakeVl2(params);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[2];  // Different rack.
  std::set<std::vector<LinkId>> distinct;
  for (uint64_t salt = 0; salt < 64; ++salt) {
    distinct.insert(topo.PathBetween(a, b, salt));
  }
  EXPECT_GT(distinct.size(), 1u);  // Multiple equal-cost paths get used.
}

TEST(TopologyTest, EcmpPathIsDeterministicPerSalt) {
  const Topology topo = MakeVl2({});
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts().back();
  EXPECT_EQ(topo.PathBetween(a, b, 99), topo.PathBetween(a, b, 99));
}

TEST(TopologyTest, Ec2BuilderExactInstanceCount) {
  Ec2Params params;
  params.num_instances = 101;
  const Topology topo = MakeEc2(params);
  EXPECT_EQ(topo.hosts().size(), 101u);
  for (NodeId h : topo.hosts()) {
    EXPECT_DOUBLE_EQ(topo.host_caps(h).nic_up, 500 * kMbps);
    EXPECT_DOUBLE_EQ(topo.host_caps(h).nic_down, 500 * kMbps);
  }
}

TEST(TopologyTest, UplinkDownlinkLookup) {
  const Topology topo = MakeSingleSwitch({});
  const NodeId h = topo.hosts()[0];
  const LinkId up = topo.UplinkOf(h);
  const LinkId down = topo.DownlinkOf(h);
  EXPECT_EQ(topo.link(up).from, h);
  EXPECT_EQ(topo.link(down).to, h);
}

TEST(TopologyTest, HostCapsMutable) {
  Topology topo = MakeSingleSwitch({});
  const NodeId h = topo.hosts()[0];
  topo.mutable_host_caps(h).disk_read = 1 * kMbps;
  EXPECT_DOUBLE_EQ(topo.host_caps(h).disk_read, 1 * kMbps);
}

}  // namespace
}  // namespace cloudtalk
