// Tests for the web-search scatter-gather substrate.
#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/websearch/search_cluster.h"

namespace cloudtalk {
namespace {

Topology SearchFabric(int racks = 6, int hosts_per_rack = 20) {
  Vl2Params params;
  params.num_racks = racks;
  params.hosts_per_rack = hosts_per_rack;
  params.host_link = 1 * kGbps;
  return MakeVl2(params);
}

TEST(SearchClusterTest, DeploymentBuilders) {
  const Topology topo = SearchFabric(2, 8);
  const auto& hosts = topo.hosts();
  const SearchDeployment one =
      SingleAggregatorDeployment(hosts, hosts[0], hosts[1]);
  EXPECT_EQ(one.aggregators.size(), 1u);
  EXPECT_EQ(one.leaves_per_aggregator[0].size(), hosts.size() - 2);

  const SearchDeployment two =
      TwoAggregatorDeployment(hosts, hosts[0], hosts[1], hosts[2]);
  EXPECT_EQ(two.aggregators.size(), 2u);
  EXPECT_EQ(two.leaves_per_aggregator[0].size() + two.leaves_per_aggregator[1].size(),
            hosts.size() - 3);
}

TEST(SearchClusterTest, LowLoadQueriesComplete) {
  const Topology topo = SearchFabric(2, 10);
  const auto& hosts = topo.hosts();
  SearchCluster cluster(&topo, TwoAggregatorDeployment(hosts, hosts[0], hosts[1], hosts[11]),
                        SearchParams{});
  const SearchStats stats = cluster.RunLoad(/*qps=*/2, /*duration=*/3, /*seed=*/1);
  EXPECT_GT(stats.issued, 0);
  EXPECT_EQ(stats.completed, stats.issued);
  EXPECT_GT(Mean(stats.latencies), 0.0);
}

TEST(SearchClusterTest, SingleAggregatorIncastAtHighLoad) {
  // 100 leaves answering into one aggregator port: high load collapses the
  // single-aggregator configuration (Figure 11's crash regime), while the
  // same load on two aggregators stays healthy.
  const Topology topo = SearchFabric(6, 20);
  std::vector<NodeId> hosts(topo.hosts().begin(), topo.hosts().begin() + 103);
  SearchParams params;
  params.net.queue_packets = 50;

  SearchCluster single(&topo, SingleAggregatorDeployment(hosts, hosts[0], hosts[1]), params);
  const SearchStats s1 = single.RunLoad(/*qps=*/20, /*duration=*/2, /*seed=*/2);

  SearchCluster twin(&topo, TwoAggregatorDeployment(hosts, hosts[0], hosts[1], hosts[60]),
                     params);
  const SearchStats s2 = twin.RunLoad(/*qps=*/20, /*duration=*/2, /*seed=*/2);

  ASSERT_GT(s1.completed, 0);
  ASSERT_GT(s2.completed, 0);
  // Incast shows up as drops/timeouts and a worse tail for the single agg.
  EXPECT_GT(s1.timeouts, 0);
  EXPECT_GT(Percentile(s1.latencies, 90), Percentile(s2.latencies, 90));
}

TEST(SearchClusterTest, LatencyGrowsWithLoad) {
  const Topology topo = SearchFabric(6, 20);
  std::vector<NodeId> hosts(topo.hosts().begin(), topo.hosts().begin() + 103);
  SearchCluster single(&topo, SingleAggregatorDeployment(hosts, hosts[0], hosts[1]),
                       SearchParams{});
  const SearchStats low = single.RunLoad(1, 2, 3);
  const SearchStats high = single.RunLoad(30, 2, 3);
  ASSERT_GT(low.completed, 0);
  ASSERT_GT(high.completed, 0);
  EXPECT_GT(Percentile(high.latencies, 95), Percentile(low.latencies, 95));
}

}  // namespace
}  // namespace cloudtalk
