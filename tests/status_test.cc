// Tests for status reports, wire format, probe transports, and sampling.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

#include "src/status/sampling.h"
#include "src/status/status.h"
#include "src/status/status_server.h"
#include "src/status/transport.h"
#include "src/status/udp_transport.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

// A UsageSource with manually controlled snapshots.
class FakeSource : public UsageSource {
 public:
  StatusReport Snapshot(NodeId host) override {
    StatusReport report = current_;
    report.host = host;
    ++snapshots_;
    return report;
  }
  void Set(const StatusReport& report) { current_ = report; }
  int snapshots() const { return snapshots_; }

 private:
  StatusReport current_;
  int snapshots_ = 0;
};

StatusReport SomeReport() {
  StatusReport r;
  r.nic_tx_cap = 1e9;
  r.nic_tx_use = 2e8;
  r.nic_rx_cap = 1e9;
  r.nic_rx_use = 3e8;
  r.disk_read_cap = 4e9;
  r.disk_read_use = 1e9;
  r.disk_write_cap = 4e9;
  r.disk_write_use = 5e8;
  return r;
}

// ---- Wire format ----

TEST(WireTest, SizesMatchPaper) {
  // Section 5.5: "queries to status servers (64B) and the associated
  // responses (78B)".
  EXPECT_EQ(kProbeRequestBytes, 64);
  EXPECT_EQ(kProbeReplyBytes, 78);
  EXPECT_EQ(sizeof(ProbeRequestWire), 64u);
  EXPECT_EQ(sizeof(ProbeReplyWire), 78u);
}

TEST(WireTest, RequestRoundTrip) {
  const ProbeRequestWire wire = EncodeProbeRequest(77, PackIpv4("10.0.0.1"), PackIpv4("10.0.0.2"));
  const auto decoded = DecodeProbeRequest(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 77u);
  EXPECT_EQ(UnpackIpv4(decoded->sender_ip), "10.0.0.1");
  EXPECT_EQ(UnpackIpv4(decoded->target_ip), "10.0.0.2");
}

TEST(WireTest, ReplyRoundTrip) {
  const StatusReport report = SomeReport();
  const ProbeReplyWire wire = EncodeProbeReply(5, PackIpv4("10.1.2.3"), report);
  const auto decoded = DecodeProbeReply(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 5u);
  EXPECT_EQ(UnpackIpv4(decoded->reporter_ip), "10.1.2.3");
  EXPECT_DOUBLE_EQ(decoded->report.nic_tx_use, report.nic_tx_use);
  EXPECT_DOUBLE_EQ(decoded->report.disk_write_cap, report.disk_write_cap);
}

TEST(WireTest, MalformedRejected) {
  ProbeRequestWire bad{};
  EXPECT_FALSE(DecodeProbeRequest(bad).has_value());
  ProbeReplyWire bad_reply{};
  EXPECT_FALSE(DecodeProbeReply(bad_reply).has_value());
  // A request is not a valid reply.
  const ProbeRequestWire request = EncodeProbeRequest(1, 0, 0);
  ProbeReplyWire as_reply{};
  std::copy(request.begin(), request.end(), as_reply.begin());
  EXPECT_FALSE(DecodeProbeReply(as_reply).has_value());
}

TEST(WireTest, Ipv4PackUnpack) {
  EXPECT_EQ(UnpackIpv4(PackIpv4("192.168.1.200")), "192.168.1.200");
  EXPECT_EQ(UnpackIpv4(PackIpv4("0.0.0.0")), "0.0.0.0");
  EXPECT_EQ(UnpackIpv4(PackIpv4("255.255.255.255")), "255.255.255.255");
}

// ---- StatusReport helpers ----

TEST(StatusReportTest, AssumeLoadedSaturatesEverything) {
  HostCaps caps;
  const StatusReport r = StatusReport::AssumeLoaded(3, caps);
  EXPECT_EQ(r.host, 3);
  EXPECT_DOUBLE_EQ(r.AvailableTx(), 0.0);
  EXPECT_DOUBLE_EQ(r.AvailableRx(), 0.0);
  EXPECT_DOUBLE_EQ(r.disk_read_use, caps.disk_read);
}

TEST(StatusReportTest, IdleHasZeroUsage) {
  HostCaps caps;
  const StatusReport r = StatusReport::Idle(1, caps);
  EXPECT_DOUBLE_EQ(r.nic_tx_use, 0.0);
  EXPECT_DOUBLE_EQ(r.AvailableTx(), caps.nic_up);
}

// ---- StatusServer measurement caching ----

TEST(StatusServerTest, CachesUntilMeasure) {
  FakeSource source;
  StatusReport a = SomeReport();
  source.Set(a);
  StatusServer server(/*host=*/0, &source, /*period=*/0.1);
  server.Measure();
  EXPECT_DOUBLE_EQ(server.Report().nic_tx_use, 2e8);

  StatusReport b = a;
  b.nic_tx_use = 9e8;
  source.Set(b);
  // Still the old sample until the next Measure() — the feedback delay.
  EXPECT_DOUBLE_EQ(server.Report().nic_tx_use, 2e8);
  server.Measure();
  EXPECT_DOUBLE_EQ(server.Report().nic_tx_use, 9e8);
}

TEST(StatusServerTest, ZeroPeriodMeansLive) {
  FakeSource source;
  source.Set(SomeReport());
  StatusServer server(0, &source, /*period=*/0);
  server.Report();
  server.Report();
  EXPECT_EQ(source.snapshots(), 2);  // Measured on every probe.
}

// ---- SimUdpTransport ----

std::vector<std::unique_ptr<StatusServer>> MakeServers(FakeSource* source, int count,
                                                       SimUdpTransport** transport_out,
                                                       SimUdpParams params = {}) {
  std::vector<std::unique_ptr<StatusServer>> servers;
  std::unordered_map<NodeId, StatusServer*> map;
  for (int i = 0; i < count; ++i) {
    servers.push_back(std::make_unique<StatusServer>(i, source, 0.0));
    map[i] = servers.back().get();
  }
  *transport_out = new SimUdpTransport(std::move(map), params, /*seed=*/1);
  return servers;
}

TEST(SimUdpTransportTest, SmallFanInLossless) {
  FakeSource source;
  source.Set(SomeReport());
  SimUdpTransport* transport = nullptr;
  auto servers = MakeServers(&source, 100, &transport);
  std::unique_ptr<SimUdpTransport> owner(transport);
  std::vector<NodeId> targets(100);
  for (int i = 0; i < 100; ++i) {
    targets[i] = i;
  }
  const ProbeOutcome outcome = transport->Probe(targets, 0.01);
  EXPECT_EQ(outcome.stats.requests_sent, 100);
  EXPECT_EQ(outcome.stats.replies_received, 100);
  EXPECT_EQ(outcome.reports.size(), 100u);
  EXPECT_EQ(outcome.stats.bytes_sent, 100 * 64);
  EXPECT_EQ(outcome.stats.bytes_received, 100 * 78);
}

TEST(SimUdpTransportTest, LargeFanInDropsReplies) {
  // Section 4.3: "querying one hundred servers gives low packet loss ...
  // while for a thousand servers, there is high packet loss".
  FakeSource source;
  source.Set(SomeReport());
  SimUdpTransport* transport = nullptr;
  auto servers = MakeServers(&source, 1000, &transport);
  std::unique_ptr<SimUdpTransport> owner(transport);
  std::vector<NodeId> targets(1000);
  for (int i = 0; i < 1000; ++i) {
    targets[i] = i;
  }
  const ProbeOutcome outcome = transport->Probe(targets, 0.01);
  EXPECT_EQ(outcome.stats.requests_sent, 1000);
  EXPECT_EQ(outcome.stats.replies_received, 300);  // burst_capacity default.
}

TEST(SimUdpTransportTest, UnregisteredHostBehavesAsLost) {
  FakeSource source;
  SimUdpTransport transport({}, {}, 1);
  const ProbeOutcome outcome = transport.Probe({42}, 0.01);
  EXPECT_EQ(outcome.stats.requests_sent, 1);
  EXPECT_EQ(outcome.stats.replies_received, 0);
  EXPECT_TRUE(outcome.reports.empty());
}

TEST(SimUdpTransportTest, BaseLossDropsIndependently) {
  FakeSource source;
  source.Set(SomeReport());
  SimUdpParams params;
  params.base_loss = 1.0;  // Everything lost.
  SimUdpTransport* transport = nullptr;
  auto servers = MakeServers(&source, 10, &transport, params);
  std::unique_ptr<SimUdpTransport> owner(transport);
  const ProbeOutcome outcome = transport->Probe({0, 1, 2}, 0.01);
  EXPECT_EQ(outcome.stats.replies_received, 0);
}

// ---- Sampling analysis ----

TEST(SamplingTest, BinomialTailBasics) {
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0.5, 11), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 1.0, 10), 1.0);
  // P[Bin(2, 0.5) >= 1] = 0.75.
  EXPECT_NEAR(BinomialTailAtLeast(2, 0.5, 1), 0.75, 1e-12);
  // P[Bin(3, 0.3) >= 2] = 3*0.09*0.7 + 0.027 = 0.216.
  EXPECT_NEAR(BinomialTailAtLeast(3, 0.3, 2), 0.216, 1e-12);
}

TEST(SamplingTest, RequiredSamplesMatchesDirectScan) {
  for (const int d : {1, 2, 3, 5, 10}) {
    const int n = RequiredSamples(d, 0.3, 0.99);
    EXPECT_GE(BinomialTailAtLeast(n, 0.3, d), 0.99);
    if (n > d) {
      EXPECT_LT(BinomialTailAtLeast(n - 1, 0.3, d), 0.99);
    }
  }
}

TEST(SamplingTest, PaperScaleNumbers) {
  // Section 4.3/5.2: with 30% idle and 99% confidence, selecting d <= 5
  // servers needs only ~10-25 probes; d = 2 needs about 19-20.
  const int n1 = RequiredSamples(1, 0.3, 0.99);
  const int n2 = RequiredSamples(2, 0.3, 0.99);
  const int n5 = RequiredSamples(5, 0.3, 0.99);
  EXPECT_GE(n1, 10);
  EXPECT_LE(n1, 15);
  EXPECT_GE(n2, 18);
  EXPECT_LE(n2, 21);
  EXPECT_LE(n5, 36);
  // Monotone in d.
  EXPECT_LT(n1, n2);
  EXPECT_LT(n2, n5);
}

TEST(SamplingTest, MoreIdleNeedsFewerSamples) {
  EXPECT_LT(RequiredSamples(3, 0.7, 0.99), RequiredSamples(3, 0.3, 0.99));
  EXPECT_LT(RequiredSamples(3, 0.3, 0.99), RequiredSamples(3, 0.1, 0.99));
}

TEST(SamplingTest, HigherConfidenceNeedsMoreSamples) {
  EXPECT_LE(RequiredSamples(3, 0.3, 0.9), RequiredSamples(3, 0.3, 0.99));
  EXPECT_LE(RequiredSamples(3, 0.3, 0.99), RequiredSamples(3, 0.3, 0.999));
}

TEST(SamplingTest, DegenerateCases) {
  EXPECT_EQ(RequiredSamples(0, 0.3, 0.99), 0);
  EXPECT_EQ(RequiredSamples(3, 0.0, 0.99, 1000), 1000);
}

// ---- UDP loopback integration ----

TEST(UdpTransportTest, LoopbackProbe) {
  FakeSource source;
  source.Set(SomeReport());
  std::vector<std::unique_ptr<UdpStatusDaemon>> daemons;
  UdpSocketTransport transport;
  ASSERT_TRUE(transport.Open());
  for (int i = 0; i < 5; ++i) {
    const uint32_t ip = PackIpv4("10.0.0." + std::to_string(i + 1));
    daemons.push_back(std::make_unique<UdpStatusDaemon>(i, ip, &source));
    ASSERT_TRUE(daemons.back()->Start());
    transport.Register(i, ip, daemons.back()->port());
  }
  const ProbeOutcome outcome = transport.Probe({0, 1, 2, 3, 4}, /*timeout=*/1.0);
  EXPECT_EQ(outcome.stats.requests_sent, 5);
  EXPECT_EQ(outcome.stats.replies_received, 5);
  ASSERT_EQ(outcome.reports.size(), 5u);
  EXPECT_DOUBLE_EQ(outcome.reports.at(2).nic_rx_use, 3e8);
  EXPECT_EQ(outcome.reports.at(2).host, 2);
}

TEST(UdpTransportTest, TimeoutOnDeadPeer) {
  UdpSocketTransport transport;
  ASSERT_TRUE(transport.Open());
  // Register a port nobody listens on (port 1 needs privileges to bind, so
  // nothing should answer).
  transport.Register(0, PackIpv4("10.0.0.9"), 1);
  const int64_t m203_before =
      obs::kObsEnabled ? obs::Registry::Instance().counter("M203")->value() : 0;
  const ProbeOutcome outcome = transport.Probe({0}, /*timeout=*/0.05);
  EXPECT_EQ(outcome.stats.replies_received, 0);
  EXPECT_EQ(outcome.stats.timeouts, 1);
  EXPECT_EQ(outcome.stats.short_reads, 0);
  EXPECT_EQ(outcome.stats.late_replies, 0);
  if (obs::kObsEnabled) {
    EXPECT_EQ(obs::Registry::Instance().counter("M203")->value(), m203_before + 1);
  }
}

// A raw UDP peer with scripted behaviour: waits for one probe request on its
// own socket, then lets the test reply with arbitrary datagrams addressed to
// the prober — the only way to put malformed bytes on the wire, since the
// real daemon only ever sends well-formed replies.
class ScriptedPeer {
 public:
  using Sender = std::function<void(const void*, size_t)>;

  ~ScriptedPeer() {
    if (thread_.joinable()) {
      thread_.join();
    }
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool Bind() {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) {
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
  }

  uint16_t port() const { return port_; }

  // Spawns the serving thread; `handler` runs once with the decoded request
  // and a sender targeting the prober's source address.
  void Serve(std::function<void(const DecodedProbeRequest&, const Sender&)> handler) {
    thread_ = std::thread([this, handler = std::move(handler)] {
      ProbeRequestWire wire{};
      sockaddr_in from{};
      socklen_t from_len = sizeof(from);
      const ssize_t n = ::recvfrom(fd_, wire.data(), wire.size(), 0,
                                   reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n != static_cast<ssize_t>(wire.size())) {
        return;
      }
      const auto request = DecodeProbeRequest(wire);
      if (!request.has_value()) {
        return;
      }
      handler(*request, [&](const void* data, size_t size) {
        ::sendto(fd_, data, size, 0, reinterpret_cast<sockaddr*>(&from), from_len);
      });
    });
  }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST(UdpTransportTest, TruncatedDatagramCountsShortRead) {
  const uint32_t ip = PackIpv4("10.0.0.50");
  ScriptedPeer peer;
  ASSERT_TRUE(peer.Bind());
  UdpSocketTransport transport;
  ASSERT_TRUE(transport.Open());
  transport.Register(0, ip, peer.port());

  peer.Serve([&](const DecodedProbeRequest& request, const ScriptedPeer::Sender& send) {
    // A datagram that is neither v1- nor v2-sized, then the real reply so
    // the probe finishes without waiting out the timeout.
    const char garbage[5] = {1, 2, 3, 4, 5};
    send(garbage, sizeof(garbage));
    const ProbeReplyWire reply = EncodeProbeReply(request.seq, ip, SomeReport());
    send(reply.data(), reply.size());
  });

  const ProbeOutcome outcome = transport.Probe({0}, /*timeout=*/2.0);
  EXPECT_EQ(outcome.stats.requests_sent, 1);
  EXPECT_EQ(outcome.stats.replies_received, 1);
  EXPECT_EQ(outcome.stats.short_reads, 1);
  EXPECT_EQ(outcome.stats.late_replies, 0);
  EXPECT_EQ(outcome.stats.timeouts, 0);
  ASSERT_EQ(outcome.reports.size(), 1u);
}

TEST(UdpTransportTest, LateReplyOutsideSequenceWindowIsNotCounted) {
  const uint32_t ip = PackIpv4("10.0.0.51");
  ScriptedPeer peer;
  ASSERT_TRUE(peer.Bind());
  UdpSocketTransport transport;
  ASSERT_TRUE(transport.Open());
  transport.Register(0, ip, peer.port());

  peer.Serve([&](const DecodedProbeRequest& request, const ScriptedPeer::Sender& send) {
    // Well-formed reply with a sequence number from "a previous probe":
    // outside [base_seq, base_seq + fanout), so it must be dropped as late,
    // not delivered into this probe's report set.
    const ProbeReplyWire stale = EncodeProbeReply(request.seq + 1000, ip, SomeReport());
    send(stale.data(), stale.size());
    const ProbeReplyWire reply = EncodeProbeReply(request.seq, ip, SomeReport());
    send(reply.data(), reply.size());
  });

  const ProbeOutcome outcome = transport.Probe({0}, /*timeout=*/2.0);
  EXPECT_EQ(outcome.stats.replies_received, 1);
  EXPECT_EQ(outcome.stats.late_replies, 1);
  EXPECT_EQ(outcome.stats.short_reads, 0);
  EXPECT_EQ(outcome.stats.timeouts, 0);
}

// Regression for the deadline off-by-one (ISSUE 5 satellite): the gather
// loop used to truncate the remaining wait to whole milliseconds, so a
// reply landing in the final sub-millisecond — or at the deadline exactly —
// was dropped and the host double-counted as missing. With the injected
// clock pinned so the loop always observes "exactly at the deadline", the
// queued reply must still be drained (poll with a zero timeout) and the
// host counted answered exactly once.
TEST(UdpTransportTest, ReplyAtExactDeadlineCountsOnce) {
  const uint32_t ip = PackIpv4("10.0.0.52");
  ScriptedPeer peer;
  ASSERT_TRUE(peer.Bind());
  UdpSocketTransport transport;
  ASSERT_TRUE(transport.Open());
  transport.Register(0, ip, peer.port());

  std::atomic<bool> reply_sent{false};
  peer.Serve([&](const DecodedProbeRequest& request, const ScriptedPeer::Sender& send) {
    const ProbeReplyWire reply = EncodeProbeReply(request.seq, ip, SomeReport());
    send(reply.data(), reply.size());
    reply_sent.store(true);
  });

  const Seconds timeout = 0.25;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(timeout));
  std::atomic<int> clock_calls{0};
  transport.set_clock_for_test([&] {
    if (clock_calls.fetch_add(1) == 0) {
      return t0;  // Deadline computation.
    }
    // Gather loop: hold until the reply datagram is queued, then report
    // that the deadline has been reached exactly (remaining == 0).
    while (!reply_sent.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return deadline;
  });

  const ProbeOutcome outcome = transport.Probe({0}, timeout);
  EXPECT_EQ(outcome.stats.requests_sent, 1);
  EXPECT_EQ(outcome.stats.replies_received, 1);
  EXPECT_EQ(outcome.stats.timeouts, 0);
  // Never both answered and missing: the two tallies partition the fan-out.
  EXPECT_EQ(outcome.stats.replies_received + outcome.stats.timeouts,
            outcome.stats.requests_sent);
  ASSERT_EQ(outcome.reports.size(), 1u);
  EXPECT_EQ(outcome.reports.at(0).host, 0);
}


// ---- v2 wire format (Section 7 scalars) ----

TEST(WireTest, V2ReplyRoundTrip) {
  StatusReport report = SomeReport();
  report.cpu_cores_total = 8;
  report.cpu_cores_used = 2.5;
  report.mem_total = 32.0 * 1024 * 1024 * 1024;
  report.mem_used = 7.0 * 1024 * 1024 * 1024;
  const ProbeReplyV2Wire wire = EncodeProbeReplyV2(9, PackIpv4("10.0.0.9"), report);
  const auto decoded = DecodeProbeReplyV2(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 9u);
  EXPECT_DOUBLE_EQ(decoded->report.nic_tx_use, report.nic_tx_use);
  EXPECT_DOUBLE_EQ(decoded->report.cpu_cores_total, 8.0);
  EXPECT_DOUBLE_EQ(decoded->report.cpu_cores_used, 2.5);
  EXPECT_DOUBLE_EQ(decoded->report.mem_used, 7.0 * 1024 * 1024 * 1024);
}

TEST(WireTest, V2SizeAndRequestFlag) {
  EXPECT_EQ(kProbeReplyV2Bytes, 102);
  const ProbeRequestWire plain = EncodeProbeRequest(1, 0, 0, false);
  const ProbeRequestWire extended = EncodeProbeRequest(1, 0, 0, true);
  EXPECT_FALSE(DecodeProbeRequest(plain)->want_extended);
  EXPECT_TRUE(DecodeProbeRequest(extended)->want_extended);
}

TEST(WireTest, V1ReplyIsNotValidV2) {
  const ProbeReplyWire v1 = EncodeProbeReply(1, 0, SomeReport());
  ProbeReplyV2Wire as_v2{};
  std::copy(v1.begin(), v1.end(), as_v2.begin());
  EXPECT_FALSE(DecodeProbeReplyV2(as_v2).has_value());
}

TEST(UdpTransportTest, ExtendedRepliesCarryScalars) {
  FakeSource source;
  StatusReport r = SomeReport();
  r.cpu_cores_total = 16;
  r.cpu_cores_used = 4;
  r.mem_total = 64.0 * 1024 * 1024 * 1024;
  r.mem_used = 8.0 * 1024 * 1024 * 1024;
  source.Set(r);
  UdpSocketTransport transport;
  ASSERT_TRUE(transport.Open());
  transport.set_request_extended(true);
  const uint32_t ip = PackIpv4("10.0.0.77");
  UdpStatusDaemon daemon(0, ip, &source);
  ASSERT_TRUE(daemon.Start());
  transport.Register(0, ip, daemon.port());
  const ProbeOutcome outcome = transport.Probe({0}, 1.0);
  ASSERT_EQ(outcome.reports.size(), 1u);
  EXPECT_DOUBLE_EQ(outcome.reports.at(0).cpu_cores_total, 16.0);
  EXPECT_DOUBLE_EQ(outcome.reports.at(0).cpu_cores_used, 4.0);
  EXPECT_EQ(outcome.stats.bytes_received, kProbeReplyV2Bytes);
}

}  // namespace
}  // namespace cloudtalk
