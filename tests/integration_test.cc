// End-to-end integration tests: scaled-down versions of the paper's
// headline experiments, asserting the *orderings* the figures show. These
// guard the repository's claims — if a change flips who wins, these fail.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/hdfs/mini_hdfs.h"
#include "src/mapred/mini_mapreduce.h"

namespace cloudtalk {
namespace {

// Mini Figure 6(b): concurrent HDFS writes on a half-busy cluster.
std::vector<double> RunWriteExperiment(bool use_cloudtalk, uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(LocalGigabitCluster(12), options);
  cluster.StartStatusSweep();
  for (int i = 6; i < 12; i += 2) {
    cluster.AddBackgroundPair(cluster.host(i), cluster.host(i + 1), 900 * kMbps);
    cluster.AddBackgroundPair(cluster.host(i + 1), cluster.host(i), 900 * kMbps);
  }
  cluster.RunUntil(0.3);
  HdfsOptions hdfs_options;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  MiniHdfs hdfs(&cluster, hdfs_options);
  std::vector<double> durations;
  for (int client = 0; client < 6; ++client) {
    hdfs.WriteFile(cluster.host(client), "f" + std::to_string(client), 512 * kMB,
                   [&durations](Seconds start, Seconds end) {
                     durations.push_back(end - start);
                   });
  }
  cluster.RunUntil(cluster.now() + 600);
  return durations;
}

TEST(IntegrationTest, CloudTalkSpeedsUpLoadedWrites) {
  std::vector<double> baseline;
  std::vector<double> cloudtalk;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (double d : RunWriteExperiment(false, seed)) {
      baseline.push_back(d);
    }
    for (double d : RunWriteExperiment(true, seed)) {
      cloudtalk.push_back(d);
    }
  }
  ASSERT_EQ(baseline.size(), 18u);
  ASSERT_EQ(cloudtalk.size(), 18u);
  // Figure 6 shape: 1.5x+ better average, better tail.
  EXPECT_GT(Mean(baseline), Mean(cloudtalk) * 1.3);
  EXPECT_GE(Percentile(baseline, 95), Percentile(cloudtalk, 95));
}

// Mini Figure 12: reservations tame the tail of centralized writes.
TEST(IntegrationTest, ReservationsCutTheTail) {
  auto run = [&](Seconds hold) {
    ClusterOptions options;
    options.seed = 5;
    options.status_period = 0.5;
    options.server.reservation_hold = hold;
    Cluster cluster(Ec2Cluster(40), options);
    cluster.StartStatusSweep();
    HdfsOptions hdfs_options;
    hdfs_options.cloudtalk_writes = true;
    MiniHdfs hdfs(&cluster, hdfs_options);
    std::vector<double> durations;
    int counter = 0;
    for (int client = 0; client < 24; ++client) {
      hdfs.WriteFile(cluster.host(client), "w" + std::to_string(counter++), 256 * kMB,
                     [&durations](Seconds start, Seconds end) {
                       durations.push_back(end - start);
                     });
    }
    cluster.RunUntil(cluster.now() + 600);
    return durations;
  };
  const std::vector<double> osc = run(0.0);
  const std::vector<double> reserved = run(0.3);
  ASSERT_EQ(osc.size(), 24u);
  ASSERT_EQ(reserved.size(), 24u);
  EXPECT_GT(Percentile(osc, 95), Percentile(reserved, 95));
}

// Mini Figure 7: reduce placement avoids UDP-blasted receivers.
TEST(IntegrationTest, ReducePlacementAvoidsBlastedNodes) {
  auto run = [&](bool use_cloudtalk, uint64_t seed) {
    ClusterOptions options;
    options.seed = seed;
    Cluster cluster(LocalGigabitCluster(14), options);
    cluster.StartStatusSweep();
    std::vector<NodeId> workers;
    for (int i = 0; i < 12; ++i) {
      workers.push_back(cluster.host(i));
    }
    cluster.AddBackgroundPair(cluster.host(12), cluster.host(2), 950 * kMbps);
    cluster.AddBackgroundPair(cluster.host(13), cluster.host(3), 950 * kMbps);
    cluster.RunUntil(0.3);
    HdfsOptions hdfs_options;
    hdfs_options.block_size = 64 * kMB;
    hdfs_options.datanodes = workers;
    MiniHdfs hdfs(&cluster, hdfs_options);
    std::vector<std::vector<NodeId>> replicas(24);
    for (int b = 0; b < 24; ++b) {
      for (int r = 0; r < 3; ++r) {
        replicas[b].push_back(workers[(b + r * 5) % 12]);
      }
    }
    hdfs.InstallFile("input", 24.0 * 64 * kMB, std::move(replicas));
    MapRedOptions mr_options;
    mr_options.cloudtalk_reduce = use_cloudtalk;
    mr_options.nodes = workers;
    mr_options.write_output = false;
    MiniMapReduce mr(&cluster, &hdfs, mr_options);
    int on_blasted = -1;
    const NodeId blasted_a = cluster.host(2);
    const NodeId blasted_b = cluster.host(3);
    mr.RunJob("input", 6, [&](const JobStats& stats) {
      on_blasted = 0;
      for (NodeId node : stats.reduce_nodes) {
        if (node == blasted_a || node == blasted_b) {
          ++on_blasted;
        }
      }
    });
    cluster.RunUntil(cluster.now() + 1200);
    return on_blasted;
  };
  int baseline = 0;
  int cloudtalk = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const int b = run(false, seed);
    const int c = run(true, seed);
    ASSERT_GE(b, 0);
    ASSERT_GE(c, 0);
    baseline += b;
    cloudtalk += c;
  }
  // Blind spreading lands reduces on the blasted receivers regularly;
  // CloudTalk's recommended sets mostly exclude them.
  EXPECT_LT(cloudtalk, baseline);
}

// Mini Section 5.2: sampling matches full knowledge.
TEST(IntegrationTest, SamplingMatchesFullProbing) {
  auto run = [&](int sample_override) {
    ClusterOptions options;
    options.seed = 3;
    if (sample_override > 0) {
      options.server.sample_override = sample_override;
      options.server.sample_threshold = sample_override;
    }
    Cluster cluster(Ec2Cluster(120), options);
    cluster.StartStatusSweep();
    Rng rng(17);
    std::vector<int> others;
    for (int i = 1; i < 120; ++i) {
      others.push_back(i);
    }
    rng.Shuffle(others);
    for (int i = 0; i + 1 < 84; i += 2) {  // 70% of 119 busy.
      cluster.AddBackgroundPair(cluster.host(others[i]), cluster.host(others[i + 1]),
                                500 * kMbps);
      cluster.AddBackgroundPair(cluster.host(others[i + 1]), cluster.host(others[i]),
                                500 * kMbps);
    }
    cluster.RunUntil(0.3);
    HdfsOptions hdfs_options;
    hdfs_options.cloudtalk_writes = true;
    MiniHdfs hdfs(&cluster, hdfs_options);
    std::vector<double> durations;
    int counter = 0;
    std::function<void()> next = [&] {
      if (counter >= 12) {
        return;
      }
      hdfs.WriteFile(cluster.host(0), "w" + std::to_string(counter++), 256 * kMB,
                     [&](Seconds start, Seconds end) {
                       durations.push_back(end - start);
                       next();
                     });
    };
    next();
    cluster.RunUntil(cluster.now() + 1200);
    return Mean(durations);
  };
  const double sampled = run(19);
  const double full = run(0);
  const double idle_write = TransferTime(256 * kMB, 500 * kMbps);
  // Both land near the idle-cluster write time.
  EXPECT_LT(sampled, idle_write * 1.6);
  EXPECT_LT(full, idle_write * 1.6);
}

}  // namespace
}  // namespace cloudtalk
