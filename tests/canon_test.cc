// Tests for semantic query canonicalization (src/lang/canon).
//
// Targeted sections pin each normalization rule (alpha-renaming, constant
// folding, flow reordering, dead clauses, group-constraint placement) with
// a pair of equivalent spellings; the property sections drive a seeded
// random query generator through three laws: parse/print round-tripping
// (printing a parsed query and reparsing yields an identical AST),
// canonicalization idempotence (canon(canon(q)) == canon(q)), and
// equivalence preservation under semantics-preserving mutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/lang/canon.h"
#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"

namespace cloudtalk {
namespace lang {
namespace {

Query MustParse(const std::string& source) {
  DiagnosticSink sink;
  Query query = ParseWithDiagnostics(source, &sink);
  EXPECT_FALSE(sink.has_errors()) << source;
  return query;
}

CanonicalQuery MustCanon(const std::string& source) {
  Result<CanonicalQuery> canon = Canonicalize(MustParse(source));
  EXPECT_TRUE(canon.ok()) << source;
  return std::move(canon).value();
}

// ---- Structural AST equality (spans ignored) ----

bool ExprEq(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) {
    return false;
  }
  switch (a.kind) {
    case Expr::Kind::kLiteral: {
      // Bitwise: canonical equality must not conflate 0.0 with -0.0 etc.
      return std::memcmp(&a.literal, &b.literal, sizeof(double)) == 0;
    }
    case Expr::Kind::kRef:
      return a.ref_attr == b.ref_attr && a.ref_flow == b.ref_flow;
    case Expr::Kind::kBinary:
      return a.op == b.op && ExprEq(*a.lhs, *b.lhs) && ExprEq(*a.rhs, *b.rhs);
  }
  return false;
}

bool QueryEq(const Query& a, const Query& b) {
  if (a.variables.size() != b.variables.size() || a.flows.size() != b.flows.size() ||
      a.requirements.size() != b.requirements.size()) {
    return false;
  }
  for (size_t i = 0; i < a.variables.size(); ++i) {
    if (a.variables[i].names != b.variables[i].names ||
        !(a.variables[i].values == b.variables[i].values)) {
      return false;
    }
  }
  for (size_t i = 0; i < a.requirements.size(); ++i) {
    const Requirement& ra = a.requirements[i];
    const Requirement& rb = b.requirements[i];
    if (ra.var != rb.var || ra.cpu_cores != rb.cpu_cores || ra.memory != rb.memory) {
      return false;
    }
  }
  for (size_t i = 0; i < a.flows.size(); ++i) {
    const FlowDef& fa = a.flows[i];
    const FlowDef& fb = b.flows[i];
    if (fa.name != fb.name || fa.explicit_name != fb.explicit_name ||
        !(fa.src == fb.src) || !(fa.dst == fb.dst) || fa.attrs.size() != fb.attrs.size()) {
      return false;
    }
    for (size_t j = 0; j < fa.attrs.size(); ++j) {
      if (fa.attrs[j].attr != fb.attrs[j].attr ||
          !ExprEq(*fa.attrs[j].value, *fb.attrs[j].value)) {
        return false;
      }
    }
  }
  const QueryOptions& oa = a.options;
  const QueryOptions& ob = b.options;
  return oa.use_packet_simulator == ob.use_packet_simulator &&
         oa.use_dynamic_load == ob.use_dynamic_load &&
         oa.allow_same_binding == ob.allow_same_binding && oa.reserve == ob.reserve &&
         oa.eval_threads == ob.eval_threads && oa.optimize == ob.optimize;
}

// ---- Targeted normalization rules ----

TEST(Canon, AlphaRenamingConverges) {
  const CanonicalQuery a = MustCanon(
      "A = (vm1 vm2)\n"
      "B = (vm3)\n"
      "copy A -> B size 64M\n");
  const CanonicalQuery b = MustCanon(
      "X = (vm1 vm2)\n"
      "Y = (vm3)\n"
      "shuffle X -> Y size 64M\n");
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_NE(a.text.find("v0"), std::string::npos);
  EXPECT_NE(a.text.find("v1"), std::string::npos);
  // Unreferenced flow names are unobservable and dropped.
  EXPECT_EQ(a.text.find("copy"), std::string::npos);
}

TEST(Canon, ConstantFoldingAndUnits) {
  const CanonicalQuery folded = MustCanon("vm1 -> vm2 size 64M\n");
  EXPECT_EQ(folded.text, MustCanon("vm1 -> vm2 size 2*32M\n").text);
  EXPECT_EQ(folded.text, MustCanon("vm1 -> vm2 size 65536K\n").text);
  EXPECT_EQ(folded.text, MustCanon("vm1 -> vm2 size 32M + 16M + 16M\n").text);
}

TEST(Canon, FlowReorderConverges) {
  const CanonicalQuery a = MustCanon(
      "vm1 -> vm2 size 1M\n"
      "vm3 -> vm4 size 2M\n");
  const CanonicalQuery b = MustCanon(
      "vm3 -> vm4 size 2M\n"
      "vm1 -> vm2 size 1M\n");
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(Canon, ReorderWithReferencesConverges) {
  const CanonicalQuery a = MustCanon(
      "w vm1 -> vm2 size 8M\n"
      "vm2 -> vm3 transfer t(w)\n");
  const CanonicalQuery b = MustCanon(
      "vm2 -> vm3 transfer t(w)\n"
      "w vm1 -> vm2 size 8M\n");
  EXPECT_EQ(a.text, b.text);
}

TEST(Canon, DeadClausesEliminated) {
  const CanonicalQuery clean = MustCanon(
      "A = (vm1 vm2)\n"
      "A -> vm3 size 1M\n");
  const CanonicalQuery noisy = MustCanon(
      "A = (vm1 vm2 vm1 vm2)\n"
      "A -> vm3 size 1M start 0\n");
  EXPECT_EQ(clean.text, noisy.text);
}

TEST(Canon, LastRequirementWins) {
  // The parser rejects duplicate `requires` statements (E002), but
  // programmatic queries can carry them; compilation lets the last one win.
  Query duplicated = MustParse(
      "A = (vm1 vm2)\n"
      "A requires cpu 2\n"
      "A -> vm3 size 1M\n");
  Requirement override_req = duplicated.requirements[0];
  override_req.cpu_cores = 4;
  duplicated.requirements.push_back(override_req);
  Result<CanonicalQuery> a = Canonicalize(duplicated);
  ASSERT_TRUE(a.ok());
  const CanonicalQuery b = MustCanon(
      "A = (vm1 vm2)\n"
      "A requires cpu 4\n"
      "A -> vm3 size 1M\n");
  EXPECT_EQ(a.value().text, b.text);
}

TEST(Canon, GroupConstraintPlacementConverges) {
  // The rate limit may be written on any member of the chain group; the
  // compiler takes the per-group minimum either way.
  const CanonicalQuery on_head = MustCanon(
      "w vm1 -> vm2 size 8M rate 10M\n"
      "vm2 -> vm3 transfer t(w)\n");
  const CanonicalQuery on_tail = MustCanon(
      "w vm1 -> vm2 size 8M\n"
      "vm2 -> vm3 transfer t(w) rate 10M\n");
  EXPECT_EQ(on_head.text, on_tail.text);
}

TEST(Canon, SubsumedDeadlineDropped) {
  const CanonicalQuery tight = MustCanon(
      "w vm1 -> vm2 size 8M end 10\n"
      "vm2 -> vm3 transfer t(w)\n");
  const CanonicalQuery subsumed = MustCanon(
      "w vm1 -> vm2 size 8M end 10\n"
      "vm2 -> vm3 transfer t(w) end 20\n");
  EXPECT_EQ(tight.text, subsumed.text);
}

TEST(Canon, DistinctQueriesStayDistinct) {
  EXPECT_NE(MustCanon("vm1 -> vm2 size 1M\n").text, MustCanon("vm1 -> vm2 size 2M\n").text);
  EXPECT_NE(MustCanon("vm1 -> vm2 size 1M\n").text, MustCanon("vm1 -> vm3 size 1M\n").text);
  EXPECT_NE(MustCanon("A = (vm1)\nA -> vm2 size 1M\n").text,
            MustCanon("A = (vm3)\nA -> vm2 size 1M\n").text);
  EXPECT_FALSE(Equivalent(MustParse("vm1 -> vm2 size 1M\n"), MustParse("vm1 -> vm2 size 2M\n")));
}

TEST(Canon, OptionsAreSignificant) {
  EXPECT_NE(MustCanon("vm1 -> vm2 size 1M\n").text,
            MustCanon("option static\nvm1 -> vm2 size 1M\n").text);
}

TEST(Canon, CertificateMapsNames) {
  const CanonicalQuery canon = MustCanon(
      "Alpha = (vm1 vm2)\n"
      "w vm3 -> vm4 size 4M\n"
      "Alpha -> vm5 size sz(w)\n");
  ASSERT_EQ(canon.variable_map.size(), 1u);
  EXPECT_EQ(canon.variable_map[0].first, "Alpha");
  EXPECT_EQ(canon.variable_map[0].second, "v0");
  ASSERT_EQ(canon.flow_map.size(), 2u);
  EXPECT_EQ(canon.flow_map[0].first, "w");
  const std::string* original = canon.OriginalVariable("v0");
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(*original, "Alpha");
  EXPECT_EQ(canon.OriginalVariable("v9"), nullptr);
  const std::string* flow = canon.OriginalFlow(canon.flow_map[0].second);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(*flow, "w");
}

TEST(Canon, FreshNamesAvoidAddressCapture) {
  // An address literally named v0 must not be captured by the canonical
  // variable name (endpoint idents resolve to variables first).
  const CanonicalQuery canon = MustCanon(
      "Worker = (vm1 v0)\n"
      "Worker -> v0 size 1M\n");
  ASSERT_EQ(canon.variable_map.size(), 1u);
  EXPECT_NE(canon.variable_map[0].second, "v0");
}

TEST(Canon, RejectsAmbiguousQueries) {
  Query dup_var;
  VarDecl decl;
  decl.names = {"A", "A"};
  decl.values = {Endpoint::Address("vm1")};
  dup_var.variables.push_back(decl);
  EXPECT_FALSE(Canonicalize(dup_var).ok());

  Query dup_flow = MustParse("vm1 -> vm2 size 1M\nvm1 -> vm3 size 1M\n");
  dup_flow.flows[1].name = dup_flow.flows[0].name;
  EXPECT_FALSE(Canonicalize(dup_flow).ok());

  Query bad_ref = MustParse("vm1 -> vm2 size 1M\n");
  bad_ref.flows[0].attrs[0].value = Expr::Ref(Attr::kSize, "nosuch");
  EXPECT_FALSE(Canonicalize(bad_ref).ok());
}

TEST(Canon, LiteralPrintingRoundTrips) {
  // Canonical-text equality relies on distinct doubles printing distinctly.
  const double values[] = {1.0 / 3.0,       2.5,   1e-4, 123456789.25,
                           1024.0 * 3 + 1,  0.125, 7.0,  64.0 * 1024 * 1024};
  for (const double v : values) {
    const std::string text = Expr::Literal(v)->ToString();
    double reparsed = 0;
    if (text.back() == 'K' || text.back() == 'M' || text.back() == 'G') {
      const double scale = text.back() == 'K'   ? 1024.0
                           : text.back() == 'M' ? 1024.0 * 1024.0
                                                : 1024.0 * 1024.0 * 1024.0;
      reparsed = std::strtod(text.substr(0, text.size() - 1).c_str(), nullptr) * scale;
    } else {
      reparsed = std::strtod(text.c_str(), nullptr);
    }
    EXPECT_EQ(reparsed, v) << text;
  }
  EXPECT_NE(Expr::Literal(1.0 / 3.0)->ToString(),
            Expr::Literal(std::nextafter(1.0 / 3.0, 1.0))->ToString());
}

// ---- Seeded random query generator ----

class Gen {
 public:
  explicit Gen(uint32_t seed) : rng_(seed) {}

  int Int(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng_); }
  bool Chance(int denom) { return Int(1, denom) == 1; }

  Query Query_() {
    Query q;
    if (Chance(5)) {
      q.options.use_dynamic_load = false;
    }
    if (Chance(5)) {
      q.options.allow_same_binding = true;
    }
    if (Chance(5)) {
      q.options.reserve = false;
    }
    if (Chance(5)) {
      q.options.eval_threads = Int(1, 4);
    }
    if (Chance(5)) {
      q.options.optimize = Chance(2) ? 1 : -1;
    }

    const char* var_names[] = {"A", "B", "C"};
    const int num_vars = Int(0, 3);
    for (int v = 0; v < num_vars; ++v) {
      VarDecl decl;
      decl.names = {var_names[v]};
      const int pool = Int(1, 4);
      for (int p = 0; p < pool; ++p) {
        Endpoint e = Endpoint::Address("h" + std::to_string(Int(0, 5)));
        if (std::find(decl.values.begin(), decl.values.end(), e) == decl.values.end()) {
          decl.values.push_back(e);
        }
      }
      q.variables.push_back(std::move(decl));
      if (Chance(4)) {
        Requirement req;
        req.var = var_names[v];
        req.cpu_cores = Int(0, 4);
        req.memory = Chance(2) ? Int(1, 8) * 1024.0 * 1024.0 * 1024.0 : 0;
        if (req.cpu_cores > 0 || req.memory > 0) {
          q.requirements.push_back(req);
        }
      }
    }

    const int num_flows = Int(1, 5);
    std::vector<std::string> named;
    for (int f = 0; f < num_flows; ++f) {
      FlowDef flow;
      if (Chance(2)) {
        flow.name = "w" + std::to_string(f);
        flow.explicit_name = true;
      } else {
        flow.name = "_f" + std::to_string(f + 1);
        flow.explicit_name = false;
      }
      flow.src = Endpoint_(num_vars, /*allow_disk=*/false);
      flow.dst = Endpoint_(num_vars, /*allow_disk=*/true);
      // size: literal, arithmetic, or a reference to an earlier named flow.
      if (!named.empty() && Chance(4)) {
        flow.attrs.push_back(AttrValue{
            Attr::kSize,
            Expr::Ref(Attr::kSize, named[Int(0, static_cast<int>(named.size()) - 1)]), Span{}});
      } else if (Chance(4)) {
        flow.attrs.push_back(AttrValue{
            Attr::kSize,
            Expr::Binary(Chance(2) ? '+' : '*', SizeLiteral(), Expr::Literal(Int(1, 4))),
            Span{}});
      } else {
        flow.attrs.push_back(AttrValue{Attr::kSize, SizeLiteral(), Span{}});
      }
      if (!named.empty() && Chance(4)) {
        flow.attrs.push_back(AttrValue{
            Attr::kTransfer,
            Expr::Ref(Attr::kTransfer, named[Int(0, static_cast<int>(named.size()) - 1)]),
            Span{}});
      }
      if (Chance(3)) {
        flow.attrs.push_back(
            AttrValue{Attr::kRate, Expr::Literal(Int(1, 100) * 1024.0 * 1024.0), Span{}});
      }
      if (Chance(4)) {
        flow.attrs.push_back(AttrValue{Attr::kStart, Expr::Literal(Int(0, 10)), Span{}});
      }
      if (Chance(4)) {
        flow.attrs.push_back(AttrValue{Attr::kEnd, Expr::Literal(Int(5, 60)), Span{}});
      }
      if (flow.explicit_name) {
        named.push_back(flow.name);
      }
      q.flows.push_back(std::move(flow));
    }
    return q;
  }

  // ---- Semantics-preserving mutations ----

  void Mutate(Query* q) {
    switch (Int(0, 4)) {
      case 0: {  // Alpha-rename variables and flows.
        for (VarDecl& decl : q->variables) {
          for (std::string& name : decl.names) {
            name += "r";
          }
        }
        for (Requirement& req : q->requirements) {
          req.var += "r";
        }
        std::vector<Expr*> exprs;
        for (FlowDef& flow : q->flows) {
          if (flow.explicit_name) {
            flow.name += "r";
          }
          for (Endpoint* e : {&flow.src, &flow.dst}) {
            if (e->kind == Endpoint::Kind::kVariable) {
              e->name += "r";
            }
          }
          for (AttrValue& av : flow.attrs) {
            exprs.push_back(av.value.get());
          }
        }
        while (!exprs.empty()) {
          Expr* e = exprs.back();
          exprs.pop_back();
          if (e->kind == Expr::Kind::kRef) {
            e->ref_flow += "r";
          } else if (e->kind == Expr::Kind::kBinary) {
            exprs.push_back(e->lhs.get());
            exprs.push_back(e->rhs.get());
          }
        }
        break;
      }
      case 1:  // Shuffle flow statement order.
        std::shuffle(q->flows.begin(), q->flows.end(), rng_);
        break;
      case 2: {  // Unfold a literal: L becomes (L * 1), bit-identical refold.
        std::vector<ExprPtr*> literals;
        for (FlowDef& flow : q->flows) {
          for (AttrValue& av : flow.attrs) {
            CollectLiterals(&av.value, &literals);
          }
        }
        if (!literals.empty()) {
          ExprPtr* slot = literals[Int(0, static_cast<int>(literals.size()) - 1)];
          *slot = Expr::Binary('*', std::move(*slot), Expr::Literal(1));
        }
        break;
      }
      case 3:  // Duplicate a pool entry.
        if (!q->variables.empty()) {
          VarDecl& decl = q->variables[Int(0, static_cast<int>(q->variables.size()) - 1)];
          decl.values.push_back(decl.values[Int(0, static_cast<int>(decl.values.size()) - 1)]);
        }
        break;
      case 4: {  // Insert a dead clause.
        FlowDef& flow = q->flows[Int(0, static_cast<int>(q->flows.size()) - 1)];
        const Attr choices[] = {Attr::kStart, Attr::kRate, Attr::kEnd};
        const Attr attr = choices[Int(0, 2)];
        if (flow.FindAttr(attr) == nullptr) {
          const double value = attr == Attr::kStart ? 0.0 : (attr == Attr::kRate ? 0.0 : -3.0);
          flow.attrs.push_back(AttrValue{attr, Expr::Literal(value), Span{}});
        }
        break;
      }
    }
  }

 private:
  Endpoint Endpoint_(int num_vars, bool allow_disk) {
    const char* var_names[] = {"A", "B", "C"};
    if (num_vars > 0 && Chance(2)) {
      return Endpoint::Variable(var_names[Int(0, num_vars - 1)]);
    }
    if (allow_disk && Chance(6)) {
      return Endpoint::Disk();
    }
    if (Chance(8)) {
      return Endpoint::Address("10.0.0." + std::to_string(Int(1, 9)));
    }
    return Endpoint::Address("h" + std::to_string(Int(0, 5)));
  }

  ExprPtr SizeLiteral() {
    const double units[] = {1024.0, 1024.0 * 1024.0, 1024.0 * 1024.0 * 1024.0};
    return Expr::Literal(Int(1, 512) * units[Int(0, 2)]);
  }

  static void CollectLiterals(ExprPtr* expr, std::vector<ExprPtr*>* out) {
    if ((*expr)->kind == Expr::Kind::kLiteral) {
      out->push_back(expr);
    } else if ((*expr)->kind == Expr::Kind::kBinary) {
      CollectLiterals(&(*expr)->lhs, out);
      CollectLiterals(&(*expr)->rhs, out);
    }
  }

  std::mt19937 rng_;
};

// Query holds unique_ptr expressions and is not copyable; print-and-reparse
// is a faithful deep copy (the ParserRoundTrip property below proves it).
Query CloneForMutation(const Query& query) {
  DiagnosticSink sink;
  Query clone = ParseWithDiagnostics(query.ToString(), &sink);
  EXPECT_FALSE(sink.has_errors());
  return clone;
}

// ---- Properties ----

TEST(CanonProperty, ParserRoundTrip) {
  for (uint32_t seed = 1; seed <= 200; ++seed) {
    Gen gen(seed);
    const Query original = gen.Query_();
    const std::string printed = original.ToString();
    DiagnosticSink sink;
    const Query reparsed = ParseWithDiagnostics(printed, &sink);
    ASSERT_FALSE(sink.has_errors()) << "seed " << seed << "\n" << printed;
    EXPECT_TRUE(QueryEq(original, reparsed)) << "seed " << seed << "\n" << printed;
    EXPECT_EQ(printed, reparsed.ToString()) << "seed " << seed;
  }
}

TEST(CanonProperty, Idempotence) {
  for (uint32_t seed = 1; seed <= 200; ++seed) {
    Gen gen(seed);
    const Query query = gen.Query_();
    Result<CanonicalQuery> first = Canonicalize(query);
    ASSERT_TRUE(first.ok()) << "seed " << seed;
    Result<CanonicalQuery> second = Canonicalize(first.value().query);
    ASSERT_TRUE(second.ok()) << "seed " << seed;
    EXPECT_EQ(first.value().text, second.value().text)
        << "seed " << seed << "\n" << query.ToString();
    EXPECT_EQ(first.value().hash, second.value().hash) << "seed " << seed;
    // The canonical form of a canonical query maps every name to itself.
    for (const auto& [original, canonical] : second.value().variable_map) {
      EXPECT_EQ(original, canonical) << "seed " << seed;
    }
  }
}

TEST(CanonProperty, MutationEquivalence) {
  for (uint32_t seed = 1; seed <= 200; ++seed) {
    Gen gen(seed);
    const Query original = gen.Query_();
    Query mutated = CloneForMutation(original);
    const int mutations = gen.Int(1, 3);
    for (int m = 0; m < mutations; ++m) {
      gen.Mutate(&mutated);
    }
    EXPECT_TRUE(Equivalent(original, mutated))
        << "seed " << seed << "\noriginal:\n" << original.ToString() << "mutated:\n"
        << mutated.ToString();
  }
}

}  // namespace
}  // namespace lang
}  // namespace cloudtalk
