// Cross-module property tests:
//  * the Section 5.1 optimality claims of the heuristic,
//  * parser robustness (never crashes, errors are positioned),
//  * CloudTalk server thread safety under concurrent queries.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/directory.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/core/server.h"
#include "src/lang/parser.h"
#include "src/status/transport.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

StatusByAddress RandomUniformState(int servers, Rng& rng) {
  StatusByAddress status;
  for (int i = 1; i <= servers; ++i) {
    StatusReport report;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.nic_tx_use = rng.Uniform(0, 0.9) * 1e9;
    report.nic_rx_use = rng.Uniform(0, 0.9) * 1e9;
    report.disk_read_cap = report.disk_write_cap = 1e12;
    status["s" + std::to_string(i)] = report;
  }
  return status;
}

// "It can be shown that our algorithm is optimal for single variable
// queries" — already covered in core_test. This covers the other claim:
// "and for daisy-chaining queries where the first endpoint is a fixed
// address."
class DaisyFixedHeadOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(DaisyFixedHeadOptimalityTest, MatchesExhaustive) {
  constexpr int kServers = 12;
  Rng rng(GetParam() * 7919);
  std::ostringstream text;
  text << "x1 = x2 = (";
  for (int i = 1; i <= kServers; ++i) {
    text << "s" << i << " ";
  }
  text << ")\n";
  text << "f1 head -> x1 size 100M\n";
  text << "f2 x1 -> x2 size sz(f1) transfer t(f1)\n";
  auto query = lang::Parse(text.str());
  ASSERT_TRUE(query.ok());
  auto compiled = lang::CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());

  StatusByAddress status = RandomUniformState(kServers, rng);
  status["head"] = StatusReport::Idle(kInvalidNode, HostCaps{});

  FlowLevelEstimator estimator(/*min_available_fraction=*/0.0);
  auto best = EvaluateExhaustive(compiled.value(), status, estimator);
  ASSERT_TRUE(best.ok());
  auto heuristic = EvaluateHeuristic(compiled.value(), status, HeuristicParams{});
  ASSERT_TRUE(heuristic.ok());
  auto h_est = estimator.EstimateQuery(compiled.value(), heuristic.value().binding, status);
  ASSERT_TRUE(h_est.ok());
  // Within 2% of the optimum on every state (ties in scoring can pick a
  // different but equally good binding).
  EXPECT_LE(h_est.value().makespan, best.value().estimate.makespan * 1.02)
      << "heuristic " << h_est.value().makespan << "s vs optimal "
      << best.value().estimate.makespan << "s";
}

INSTANTIATE_TEST_SUITE_P(RandomStates, DaisyFixedHeadOptimalityTest, ::testing::Range(1, 26));

// ---- Parser robustness: mutated inputs never crash ----

class ParserRobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustnessTest, MutatedQueriesNeverCrash) {
  const std::string base =
      "option noreserve\n"
      "r1 = r2 = r3 = (dn1 dn2 dn3 10.0.0.4)\n"
      "r1 requires cpu 2 mem 1G\n"
      "f1 client -> r1 size 256M rate r(f2)\n"
      "f2 r1 -> disk size 256M rate r(f1)\n"
      "f3 r1 -> r2 size sz(f1) transfer t(f2)\n";
  Rng rng(GetParam() * 104729);
  for (int iter = 0; iter < 200; ++iter) {
    std::string mutated = base;
    const int mutations = static_cast<int>(rng.UniformInt(1, 6));
    for (int m = 0; m < mutations; ++m) {
      const int pos = static_cast<int>(rng.UniformInt(0, static_cast<int>(mutated.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        case 2:
          mutated.insert(static_cast<size_t>(pos), 1,
                         static_cast<char>(rng.UniformInt(32, 126)));
          break;
        case 3:
          mutated[pos] = '\n';
          break;
      }
      if (mutated.empty()) {
        mutated = " ";
      }
    }
    // Must either parse or return a structured error; never crash or hang.
    auto result = lang::Parse(mutated);
    if (!result.ok()) {
      EXPECT_FALSE(result.error().message.empty());
    } else {
      // Whatever parsed must print and re-parse (printer totality).
      auto reparsed = lang::Parse(result.value().ToString());
      EXPECT_TRUE(reparsed.ok()) << result.value().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest, ::testing::Range(1, 9));

// ---- Server thread safety ----

class ThreadSafeSource : public UsageSource {
 public:
  explicit ThreadSafeSource(const Topology* topo) : topo_(topo) {}
  StatusReport Snapshot(NodeId host) override {
    return StatusReport::Idle(host, topo_->host_caps(host));
  }

 private:
  const Topology* topo_;
};

TEST(ServerConcurrencyTest, ParallelQueriesAreConsistent) {
  SingleSwitchParams params;
  params.num_hosts = 12;
  const Topology topo = MakeSingleSwitch(params);
  TopologyDirectory directory(&topo);
  ThreadSafeSource source(&topo);
  std::vector<std::unique_ptr<StatusServer>> servers;
  std::unordered_map<NodeId, StatusServer*> server_map;
  for (NodeId h : topo.hosts()) {
    servers.push_back(std::make_unique<StatusServer>(h, &source, 0.0));
    server_map[h] = servers.back().get();
  }
  SimUdpTransport transport(std::move(server_map), SimUdpParams{}, 1);
  ServerConfig config;
  config.reservation_hold = 50 * kMillisecond;
  std::atomic<int64_t> fake_clock_us{0};
  CloudTalkServer server(config, &directory, &transport,
                         [&] { return fake_clock_us.fetch_add(100) * 1e-6; });

  std::string pool;
  for (int i = 1; i < 12; ++i) {
    pool += topo.IpOf(topo.hosts()[i]) + " ";
  }
  const std::string query =
      "A = B = (" + pool + ")\nf1 A -> " + topo.IpOf(topo.hosts()[0]) +
      " size 256M\nf2 B -> " + topo.IpOf(topo.hosts()[0]) + " size 256M\n";

  std::atomic<int> failures{0};
  std::atomic<int> same_binding{0};
  auto worker = [&] {
    for (int i = 0; i < 50; ++i) {
      auto reply = server.Answer(query);
      if (!reply.ok()) {
        failures.fetch_add(1);
        continue;
      }
      if (reply.value().binding.at("A").name == reply.value().binding.at("B").name) {
        same_binding.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // Distinct-binding invariant holds under concurrency.
  EXPECT_EQ(same_binding.load(), 0);
}

}  // namespace
}  // namespace cloudtalk
