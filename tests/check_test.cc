// Tests for the invariant-checking library (src/check), the lock registry
// (src/common/lock_registry), and one deliberately-corrupted state per
// instrumented subsystem (fluidsim, hdfs, mapred).
//
// The binary is built in both invariant modes: with CLOUDTALK_INVARIANTS the
// macro-based checks must fire on corrupted state; without it they must
// compile to nothing (conditions unevaluated), while the always-compiled
// checkers (LockRegistry, AccessCell) still work. Tests that need the
// macros skip themselves in OFF builds.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/check.h"
#include "src/common/lock_registry.h"
#include "src/fluidsim/fluid_simulation.h"
#include "src/harness/cluster.h"
#include "src/hdfs/mini_hdfs.h"
#include "src/mapred/mini_mapreduce.h"
#include "src/topology/topology.h"

namespace cloudtalk {

// Test peers: corrupt private state so invariants have something to catch.
struct FluidSimTestPeer {
  static void CorruptResidual(FluidSimulation& sim, GroupId id, Bytes value) {
    for (auto& group : sim.groups_) {
      if (group.id == id) {
        ASSERT_FALSE(group.members.empty());
        group.members[0].remaining = value;
        return;
      }
    }
    FAIL() << "group " << id << " not found";
  }
};

struct MapRedTestPeer {
  static int num_trackers(MiniMapReduce& mr) { return static_cast<int>(mr.trackers_.size()); }
  static void CorruptRunningMaps(MiniMapReduce& mr, int delta) {
    ASSERT_FALSE(mr.trackers_.empty());
    mr.trackers_[0].running_maps += delta;
  }
  static void Verify(MiniMapReduce& mr) { mr.VerifySchedulerState(); }
};

namespace {

using check::OnViolation;
using check::Violation;

// Installs a recording sink with log-and-continue for the test body and
// restores the abort default afterwards, so a stray violation in one test
// cannot kill or poison the rest of the binary.
class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    check::ResetViolationCountForTest();
    check::SetCheckSink(&sink_);
    check::SetViolationPolicy(OnViolation::kLogAndContinue);
    LockRegistry::Instance().ResetForTest();
  }
  void TearDown() override {
    check::SetCheckSink(nullptr);
    check::SetViolationPolicy(OnViolation::kAbort);
    LockRegistry::Instance().ResetForTest();
  }

  std::vector<Violation> Taken() { return sink_.TakeAll(); }

  check::RecordingSink sink_;
};

TEST_F(CheckTest, ConditionEvaluatedOnlyWhenCompiledIn) {
  int calls = 0;
  auto probe = [&] {
    ++calls;
    return true;
  };
  CT_INVARIANT(probe(), "D000", "held condition");
  EXPECT_EQ(calls, check::kInvariantsEnabled ? 1 : 0);
  EXPECT_TRUE(Taken().empty());

  // A failing condition only reports when compiled in; the With() chain must
  // be swallowed without evaluating anything in OFF builds.
  CT_INVARIANT(calls < 0, "D000", "deliberately false").With("calls", calls);
  const std::vector<Violation> got = Taken();
  if (check::kInvariantsEnabled) {
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].code, "D000");
    EXPECT_EQ(got[0].condition, "calls < 0");
    ASSERT_EQ(got[0].state.size(), 1u);
    EXPECT_EQ(got[0].state[0].first, "calls");
    EXPECT_EQ(got[0].state[0].second, "1");
    EXPECT_EQ(check::ViolationCount(), 1);
  } else {
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(check::ViolationCount(), 0);
  }
}

TEST_F(CheckTest, ThrowPolicyRaisesInvariantViolation) {
  if (!check::kInvariantsEnabled) {
    GTEST_SKIP() << "CT_INVARIANT compiled out";
  }
  check::SetViolationPolicy(OnViolation::kThrow);
  try {
    CT_INVARIANT(1 + 1 == 3, "D000", "arithmetic is broken").With("lhs", 2);
    FAIL() << "expected InvariantViolation";
  } catch (const check::InvariantViolation& e) {
    EXPECT_EQ(e.violation().code, "D000");
    EXPECT_NE(std::string(e.what()).find("arithmetic is broken"), std::string::npos);
  }
  // The sink saw it before the throw.
  EXPECT_EQ(Taken().size(), 1u);
}

TEST_F(CheckTest, FormatViolationIsClangStyle) {
  Violation v;
  v.code = "I104";
  v.condition = "member.remaining >= 0";
  v.file = "src/fluidsim/fluid_simulation.cc";
  v.line = 42;
  v.message = "negative residual bytes";
  v.state = {{"group", "7"}, {"remaining", "-1.5"}};
  const std::string text = check::FormatViolation(v);
  EXPECT_NE(text.find("src/fluidsim/fluid_simulation.cc:42: invariant violation:"),
            std::string::npos);
  EXPECT_NE(text.find("negative residual bytes"), std::string::npos);
  EXPECT_NE(text.find("[I104 fluidsim]"), std::string::npos);
  EXPECT_NE(text.find("condition: member.remaining >= 0"), std::string::npos);
  EXPECT_NE(text.find("remaining = -1.5"), std::string::npos);
}

TEST_F(CheckTest, ViolationJsonEscapesAndNests) {
  Violation v;
  v.code = "D000";
  v.condition = "a < \"b\"";
  v.file = "x.cc";
  v.line = 1;
  v.message = "quote \" and backslash \\";
  v.state = {{"key", "value"}};
  const std::string json = check::ViolationToJson(v);
  EXPECT_NE(json.find("\"code\":\"D000\""), std::string::npos);
  EXPECT_NE(json.find("\\\"b\\\""), std::string::npos);
  EXPECT_NE(json.find("backslash \\\\"), std::string::npos);
  EXPECT_NE(json.find("\"key\":\"value\""), std::string::npos);

  const std::string report = check::ViolationsToJson({v, v});
  EXPECT_NE(report.find("\"violations\":2"), std::string::npos);
}

TEST_F(CheckTest, CatalogCoversEveryEmittedCode) {
  const char* used[] = {"D000", "D500", "I101", "I102", "I103", "I104", "I105",
                        "I106", "I201", "I202", "I203", "I204", "I205", "I301",
                        "I302", "I303", "I304", "I305", "I401", "I402", "I403",
                        "L401", "L402"};
  for (const char* code : used) {
    const check::InvariantInfo* info = check::FindInvariant(code);
    ASSERT_NE(info, nullptr) << code;
    EXPECT_STRNE(info->summary, "") << code;
  }
  EXPECT_EQ(check::FindInvariant("X999"), nullptr);
  // Ordered by code, no duplicates (stable registry, like the lint rules).
  const auto& catalog = check::InvariantCatalog();
  for (size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string(catalog[i - 1].code), catalog[i].code);
  }
}

TEST_F(CheckTest, LockRegistryDetectsInversion) {
  LockRegistry& registry = LockRegistry::Instance();
  const LockId a = registry.Register("test.lock_a");
  const LockId b = registry.Register("test.lock_b");

  registry.OnAcquire(a);
  registry.OnAcquire(b);  // Order a -> b recorded.
  registry.OnRelease(b);
  registry.OnRelease(a);

  registry.OnAcquire(b);
  registry.OnAcquire(a);  // b -> a: inversion.
  registry.OnRelease(a);
  registry.OnRelease(b);

  EXPECT_EQ(registry.inversions_detected(), 1);
  const std::vector<Violation> got = Taken();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].code, "L401");

  // The same pair is reported once, however often it recurs.
  registry.OnAcquire(b);
  registry.OnAcquire(a);
  registry.OnRelease(a);
  registry.OnRelease(b);
  EXPECT_EQ(registry.inversions_detected(), 1);
  EXPECT_TRUE(Taken().empty());
}

TEST_F(CheckTest, LockRegistryAcceptsConsistentOrder) {
  LockRegistry& registry = LockRegistry::Instance();
  const LockId outer = registry.Register("test.outer");
  const LockId inner = registry.Register("test.inner");
  for (int i = 0; i < 3; ++i) {
    registry.OnAcquire(outer);
    registry.OnAcquire(inner);
    registry.OnRelease(inner);
    registry.OnRelease(outer);
  }
  EXPECT_EQ(registry.inversions_detected(), 0);
  EXPECT_TRUE(Taken().empty());
}

TEST_F(CheckTest, AccessCellReportsSecondWriter) {
  AccessCell cell("test.cell");
  ASSERT_TRUE(cell.Enter());
  ASSERT_TRUE(cell.Enter());  // Same-thread reentrancy is depth-counted.

  bool other_entered = true;
  std::thread intruder([&] { other_entered = cell.Enter(); });
  intruder.join();
  EXPECT_FALSE(other_entered);

  cell.Exit();
  cell.Exit();
  const std::vector<Violation> got = Taken();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].code, "L402");

  // Once the owner left, another thread may enter cleanly.
  bool entered_after_exit = false;
  std::thread successor([&] {
    entered_after_exit = cell.Enter();
    if (entered_after_exit) {
      cell.Exit();
    }
  });
  successor.join();
  EXPECT_TRUE(entered_after_exit);
  EXPECT_TRUE(Taken().empty());
}

TEST_F(CheckTest, FluidSimCatchesCorruptedResidual) {
  if (!check::kInvariantsEnabled) {
    GTEST_SKIP() << "CT_INVARIANT compiled out";
  }
  SingleSwitchParams params;
  params.num_hosts = 2;
  Topology topo = MakeSingleSwitch(params);
  FluidSimulation sim(&topo);

  GroupSpec spec;
  FluidFlow flow;
  flow.resources = {sim.resources().NicUp(topo.hosts()[0]),
                    sim.resources().NicDown(topo.hosts()[1])};
  flow.size = 100 * kMB;
  spec.flows.push_back(flow);
  const GroupId id = sim.AddGroup(std::move(spec));
  sim.RunUntil(0.01);
  ASSERT_TRUE(sim.GroupActive(id));
  EXPECT_TRUE(Taken().empty());  // Healthy state is quiet.

  FluidSimTestPeer::CorruptResidual(sim, id, -1.0);
  sim.CheckInvariantsNow();
  const std::vector<Violation> got = Taken();
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].code, "I104");
}

TEST_F(CheckTest, HdfsCatchesReadOfIncompleteBlock) {
  if (!check::kInvariantsEnabled) {
    GTEST_SKIP() << "CT_INVARIANT compiled out";
  }
  SingleSwitchParams params;
  params.num_hosts = 5;
  ClusterOptions cluster_options;
  // The server ctor applies its policy process-wide; keep log-and-continue
  // so the constructed violation is recorded instead of aborting the test.
  cluster_options.server.invariant_policy = OnViolation::kLogAndContinue;
  Cluster cluster(MakeSingleSwitch(params), cluster_options);
  HdfsOptions options;
  options.block_size = 16 * kMB;
  options.replication = 2;
  MiniHdfs hdfs(&cluster, options);

  ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f", 32 * kMB, nullptr));
  // The write pipelines are still streaming: reading now must trip I205.
  ASSERT_TRUE(hdfs.ReadFile(cluster.host(1), "f", nullptr));
  const std::vector<Violation> got = Taken();
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].code, "I205");

  // Letting the write finish makes reads legal again. The first read's
  // continuation (block 1, read via callback mid-run) fires more I205s
  // while the write is still streaming; drain those first.
  cluster.RunUntil(60.0);
  for (const Violation& v : Taken()) {
    EXPECT_EQ(v.code, "I205");
  }
  ASSERT_TRUE(hdfs.ReadFile(cluster.host(2), "f", nullptr));
  cluster.RunUntil(120.0);
  EXPECT_TRUE(Taken().empty());
}

TEST_F(CheckTest, MapRedCatchesCorruptedSlotAccounting) {
  if (!check::kInvariantsEnabled) {
    GTEST_SKIP() << "CT_INVARIANT compiled out";
  }
  SingleSwitchParams params;
  params.num_hosts = 4;
  ClusterOptions cluster_options;
  cluster_options.server.invariant_policy = OnViolation::kLogAndContinue;
  Cluster cluster(MakeSingleSwitch(params), cluster_options);
  HdfsOptions hdfs_options;
  hdfs_options.block_size = 16 * kMB;
  hdfs_options.replication = 2;
  MiniHdfs hdfs(&cluster, hdfs_options);
  hdfs.InstallFile("input", 64 * kMB,
                   {{cluster.host(0), cluster.host(1)},
                    {cluster.host(1), cluster.host(2)},
                    {cluster.host(2), cluster.host(3)},
                    {cluster.host(3), cluster.host(0)}});

  MiniMapReduce mapred(&cluster, &hdfs, MapRedOptions{});
  ASSERT_TRUE(mapred.RunJob("input", 2, nullptr));
  cluster.RunUntil(1.0);
  ASSERT_GT(MapRedTestPeer::num_trackers(mapred), 0);
  MapRedTestPeer::Verify(mapred);
  EXPECT_TRUE(Taken().empty());  // Healthy accounting is quiet.

  MapRedTestPeer::CorruptRunningMaps(mapred, 3);
  MapRedTestPeer::Verify(mapred);
  const std::vector<Violation> got = Taken();
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].code, "I304");
}

TEST_F(CheckTest, ServerConfigSetsProcessPolicy) {
  SingleSwitchParams params;
  params.num_hosts = 2;
  ClusterOptions options;
  options.server.invariant_policy = OnViolation::kLogAndContinue;
  Cluster cluster(MakeSingleSwitch(params), options);
  EXPECT_EQ(check::GetViolationPolicy(), OnViolation::kLogAndContinue);

  check::SetViolationPolicy(OnViolation::kThrow);
  EXPECT_EQ(check::GetViolationPolicy(), OnViolation::kThrow);
  EXPECT_STREQ(check::OnViolationName(OnViolation::kThrow), "throw");
}

}  // namespace
}  // namespace cloudtalk
