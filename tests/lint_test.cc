// Tests for the diagnostics engine and lint rules (ctlint's core).
//
// The table-driven section pairs one triggering and one clean query per rule
// code; the rest covers parser recovery (multiple diagnostics per pass),
// position accuracy, clang-style rendering, JSON output, and the legacy
// Result<T> wrappers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/lang/analysis.h"
#include "src/lang/diagnostics.h"
#include "src/lang/lexer.h"
#include "src/lang/lint.h"
#include "src/lang/parser.h"

namespace cloudtalk {
namespace lang {
namespace {

// Full pipeline as ctlint runs it: parse (with recovery), lint, and — when
// the query has no errors yet — semantic compilation.
DiagnosticSink Analyze(const std::string& source) {
  DiagnosticSink sink;
  const Query query = ParseWithDiagnostics(source, &sink);
  RunLint(query, &sink);
  if (!sink.has_errors()) {
    (void)CompiledQuery::Compile(query, &sink);
  }
  sink.SortByPosition();
  return sink;
}

bool HasCode(const DiagnosticSink& sink, const std::string& code) {
  const auto& diags = sink.diagnostics();
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic* FindCode(const DiagnosticSink& sink, const std::string& code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) {
      return &d;
    }
  }
  return nullptr;
}

std::string BigPool(int n) {
  std::string pool = "(";
  for (int i = 0; i < n; ++i) {
    pool += "vm" + std::to_string(i);
    pool.push_back(i + 1 < n ? ' ' : ')');
  }
  return pool;
}

// ---- Table-driven: one triggering / one clean query per rule code ----

struct RuleCase {
  const char* code;
  std::string bad;   // Must produce a diagnostic with `code`.
  std::string good;  // Must not.
};

std::vector<RuleCase> RuleCases() {
  return {
      {"W001",
       "A = (vm1 vm2)\nf1 vm3 -> vm4 size 1M\n",
       "A = (vm1 vm2)\nf1 A -> vm4 size 1M\n"},
      {"E010",
       "A = ()\nf1 A -> vm1 size 1M\n",
       "A = (vm1)\nf1 A -> vm2 size 1M\n"},
      {"W011",
       "A = (vm1 vm2 vm1)\nf1 A -> vm3 size 1M\n",
       "A = (vm1 vm2)\nf1 A -> vm3 size 1M\n"},
      {"W020",
       "f1 vm1 -> vm1 size 1M\n",
       "f1 vm1 -> vm2 size 1M\n"},
      {"E030",
       "f1 vm1 -> vm2 size sz(f2)\nf2 vm2 -> vm3 size sz(f1)\n",
       "f1 vm1 -> vm2 size 1M\nf2 vm2 -> vm3 size sz(f1)\n"},
      {"W040",
       "f1 vm1 -> vm2 size 1M transfer t(f2)\n"
       "f2 vm2 -> vm3 size 1M transfer t(f1)\n",
       "f1 vm1 -> vm2 size 1M\nf2 vm2 -> vm3 size 1M transfer t(f1)\n"},
      {"W050",
       "f1 vm1 -> vm2 size 1M rate 10M\nf2 vm2 -> vm3 size 1M rate r(f1)\n"
       "f3 vm3 -> vm4 size 1M rate 5M transfer t(f2)\n",
       "f1 vm1 -> vm2 size 1M rate 10M\nf2 vm2 -> vm3 size 1M rate r(f1)\n"},
      {"W060",
       "option packet\nA = B = C = " + BigPool(60) +
           "\nf1 A -> B size 1M\nf2 B -> C size 1M\n",
       // Same shape without `option packet`: the heuristic is linear, no
       // explosion to warn about.
       "A = B = C = " + BigPool(60) + "\nf1 A -> B size 1M\nf2 B -> C size 1M\n"},
      {"W070",
       // A and B share a pool and receive identical shards in one chain
       // group: swapping them never changes the traffic pattern.
       "option packet\nA = B = (vm1 vm2 vm3)\n"
       "f1 vm9 -> A size 1M rate 5M\nf2 vm9 -> B size 1M rate r(f1)\n",
       // Different shard sizes break the symmetry.
       "option packet\nA = B = (vm1 vm2 vm3)\n"
       "f1 vm9 -> A size 1M rate 5M\nf2 vm9 -> B size 2M rate r(f1)\n"},
      {"W071",
       "f1 vm1 -> vm2 size 0\n",
       "f1 vm1 -> vm2 size 1M\n"},
      {"E080",
       // The rate cap bounds the chain from below even on idle hosts; no
       // binding can beat size/rate, so the deadline is provably dead.
       "f1 vm1 -> vm2 size 10G rate 1M end 1\n",
       "f1 vm1 -> vm2 size 10G rate 1M\n"},
      {"W080",
       "f1 vm1 -> vm2 size 1M end 100\n",
       "f1 vm1 -> vm2 size 1M\n"},
      {"W081",
       // `big` never depends on the binding and dwarfs the variable group.
       "A = (vm1 vm2)\nbig vm8 -> vm9 size 10G\nsmall A -> vm3 size 1M\n",
       // Equal sizes: the variable group's upper bound exceeds big's lower
       // bound, so the objective is not provably pinned.
       "A = (vm1 vm2)\nbig vm8 -> vm9 size 1M\nsmall A -> vm3 size 1M\n"},
      {"W090",
       // Compilation takes the per-group minimum rate, so restating the
       // identical cap on a second chain member adds nothing.
       "w vm1 -> vm2 size 8M rate 10M\nvm2 -> vm3 transfer t(w) rate 10M\n",
       // A different value is a real (if redundant-looking) tightening and
       // belongs to W050's subsumption analysis, not W090.
       "w vm1 -> vm2 size 8M rate 10M\nvm2 -> vm3 transfer t(w) rate 5M\n"},
      {"W091",
       // Chained flows share one deadline and the earliest wins: 20s is
       // subsumed by the 10s on the first member.
       "w vm1 -> vm2 size 8M end 10\nvm2 -> vm3 transfer t(w) end 20\n",
       "w vm1 -> vm2 size 8M end 10\nvm2 -> vm3 transfer t(w)\n"},
      // W092 is batch-only (a per-query check cannot see earlier inputs);
      // the empty pair is skipped below and BatchEquivalenceTest covers it.
      {"W092", "", ""},
      {"W100",
       // A is inert: no flow, disk, or requirement ever reads its
       // candidates' status, so vm1/vm2 are outside every footprint.
       "A = (vm1 vm2)\nf1 vm3 -> vm4 size 1M\n",
       "A = (vm1 vm2)\nf1 A -> vm4 size 1M\n"},
      {"W101",
       // vm1 is pinned by f2 yet also a binding candidate of A on an
       // unrelated flow: the fixed footprint reaches into A's pool.
       "A = (vm1 vm2)\nB = (vm3 vm4)\nf1 A -> vm5 size 1M\nf2 B -> vm1 size 1M\n",
       // Priority binding (the literal is the pool variable's own peer on
       // the same flow) is the intentional shape and stays exempt.
       "A = (vm1 vm2)\nf1 A -> vm1 size 1M\n"},
  };
}

TEST(LintRuleTest, EachRuleFiresOnBadAndStaysQuietOnGood) {
  for (const RuleCase& c : RuleCases()) {
    SCOPED_TRACE(c.code);
    if (c.bad.empty()) {
      continue;  // Batch-only rule; see BatchEquivalenceTest.
    }
    const DiagnosticSink bad = Analyze(c.bad);
    const Diagnostic* d = FindCode(bad, c.code);
    ASSERT_NE(d, nullptr) << "rule " << c.code << " did not fire on:\n" << c.bad;
    EXPECT_TRUE(d->span.valid()) << c.code << " diagnostic has no position";
    EXPECT_FALSE(d->message.empty());

    const DiagnosticSink good = Analyze(c.good);
    EXPECT_FALSE(HasCode(good, c.code))
        << "rule " << c.code << " fired on clean query:\n" << c.good;
  }
}

TEST(LintRuleTest, RegistryCoversEveryDocumentedCode) {
  const std::vector<RuleCase> cases = RuleCases();
  const std::vector<LintRule>& rules = LintRules();
  ASSERT_EQ(rules.size(), cases.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_STREQ(rules[i].code, cases[i].code);
    EXPECT_EQ(rules[i].severity,
              rules[i].code[0] == 'E' ? Severity::kError : Severity::kWarning);
    EXPECT_NE(rules[i].check, nullptr);
  }
}

// ---- W092: batch equivalence across independently-clean queries ----

TEST(BatchEquivalenceTest, FlagsRenamedReorderedDuplicate) {
  DiagnosticSink s1, s2, s3;
  const Query a = ParseWithDiagnostics(
      "A = (vm1 vm2)\ncopy A -> vm3 size 64M rate 100M\nvm4 -> vm5 size 2*16M\n", &s1);
  const Query b = ParseWithDiagnostics(
      "A = (vm1 vm2)\ncopy A -> vm3 size 64M rate 100M\n", &s2);
  // Same query as `a` under renaming, flow reordering, and constant folding.
  const Query c = ParseWithDiagnostics(
      "Src = (vm1 vm2)\nvm4 -> vm5 size 32M\nxfer Src -> vm3 size 64M rate 100M\n", &s3);
  ASSERT_FALSE(s1.has_errors() || s2.has_errors() || s3.has_errors());

  const std::vector<BatchEquivalence> eq = FindEquivalentQueries({&a, &b, &c});
  ASSERT_EQ(eq.size(), 3u);
  EXPECT_EQ(eq[0].equivalent_to, -1);
  EXPECT_EQ(eq[1].equivalent_to, -1);
  EXPECT_EQ(eq[2].equivalent_to, 0);
  EXPECT_EQ(eq[2].hash, eq[0].hash);
  EXPECT_NE(eq[1].hash, eq[0].hash);
}

TEST(BatchEquivalenceTest, UncanonicalizableQueryNeverMatches) {
  // Duplicate flow names make a query ambiguous and Canonicalize refuses it;
  // even two identical ambiguous copies must not pair up. Parser recovery
  // repairs duplicate names, so build the ambiguous ASTs directly.
  DiagnosticSink s1, s2;
  Query a = ParseWithDiagnostics("f vm1 -> vm2 size 1M\ng vm1 -> vm2 size 1M\n", &s1);
  Query b = ParseWithDiagnostics("f vm1 -> vm2 size 1M\ng vm1 -> vm2 size 1M\n", &s2);
  ASSERT_FALSE(s1.has_errors() || s2.has_errors());
  a.flows[1].name = "f";
  b.flows[1].name = "f";
  const std::vector<BatchEquivalence> eq = FindEquivalentQueries({&a, &b});
  ASSERT_EQ(eq.size(), 2u);
  EXPECT_EQ(eq[0].equivalent_to, -1);
  EXPECT_EQ(eq[1].equivalent_to, -1);
}

// ---- Acceptance: two distinct rules, one query, both with positions ----

TEST(LintTest, TwoIndependentDiagnosticsOnOneQuery) {
  const std::string source =
      "A = (vm1 vm2)\n"
      "unused = (vm3)\n"
      "f1 A -> A size 10M\n";
  const DiagnosticSink sink = Analyze(source);
  EXPECT_EQ(sink.error_count(), 0);
  // W001 (unused variable), W020 (self flow), and W100 (vm3 provably
  // outside every footprint — the scope-analysis view of the same defect).
  EXPECT_EQ(sink.warning_count(), 3);

  const Diagnostic* w001 = FindCode(sink, "W001");
  ASSERT_NE(w001, nullptr);
  EXPECT_EQ(w001->span.line, 2);
  EXPECT_EQ(w001->span.column, 1);

  const Diagnostic* w100 = FindCode(sink, "W100");
  ASSERT_NE(w100, nullptr);
  EXPECT_EQ(w100->span.line, 2);
  EXPECT_EQ(w100->span.column, 11);  // The pool entry `vm3`.

  const Diagnostic* w020 = FindCode(sink, "W020");
  ASSERT_NE(w020, nullptr);
  EXPECT_EQ(w020->span.line, 3);
  EXPECT_EQ(w020->span.column, 9);  // The destination `A`.
}

// ---- Parser recovery: one pass reports many independent errors ----

TEST(ParserRecoveryTest, MultipleErrorsInOnePass) {
  const std::string source =
      "A = ()\n"
      "f1 vm1 -> \n"
      "f2 vm1 -> vm2 size 1M rate 10M\n"
      "f2 vm3 -> vm4 size 1M\n";
  const DiagnosticSink sink = Analyze(source);
  EXPECT_GE(sink.error_count(), 3);
  EXPECT_TRUE(HasCode(sink, "E010"));  // Empty pool.
  EXPECT_TRUE(HasCode(sink, "E001"));  // Missing endpoint.
  EXPECT_TRUE(HasCode(sink, "E002"));  // Duplicate flow name.
}

TEST(ParserRecoveryTest, AllUndefinedRefsReported) {
  const std::string source =
      "f1 vm1 -> vm2 size sz(nope) transfer t(also_nope)\n";
  DiagnosticSink sink;
  (void)ParseWithDiagnostics(source, &sink);
  int e003 = 0;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == "E003") {
      ++e003;
    }
  }
  EXPECT_EQ(e003, 2);
}

// ---- Satellite 1: parse errors carry exact line:column ----

TEST(PositionTest, MalformedQueriesReportExactPositions) {
  struct Case {
    std::string source;
    std::string code;
    int line;
    int column;
  };
  const std::vector<Case> cases = {
      // Truncated flow on the second line.
      {"a -> b size 1M\nc -> ", "E001", 2, 6},
      // Unknown attribute, mid-line.
      {"f1 vm1 -> vm2 size 1M extra_attr 5\n", "E004", 1, 23},
      // Unknown option.
      {"option bogus\n", "E004", 1, 8},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.source);
    DiagnosticSink sink;
    (void)ParseWithDiagnostics(c.source, &sink);
    const Diagnostic* d = FindCode(sink, c.code);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->span.line, c.line);
    EXPECT_EQ(d->span.column, c.column);
  }
}

TEST(PositionTest, LegacyParseWrapperCarriesPositionAndCode) {
  const Result<Query> result = Parse("a -> b size 1M\nc -> ");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().line, 2);
  EXPECT_EQ(result.error().column, 6);
  EXPECT_NE(result.error().message.find("[E001]"), std::string::npos);
}

TEST(PositionTest, CompileErrorsCarryPositions) {
  // E032: flow with no size attribute and nothing to inherit one from.
  const DiagnosticSink sink = Analyze("f1 vm1 -> vm2\n");
  const Diagnostic* d = FindCode(sink, "E032");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.column, 1);
}

// ---- Rendering ----

TEST(RenderTest, ClangStyleCaretAndHint) {
  const std::string source = "f1 vm1 -> vm1 size 1M\n";
  const DiagnosticSink sink = Analyze(source);
  ASSERT_EQ(sink.warning_count(), 1);
  const std::string text = FormatDiagnostics(sink.diagnostics(), source, "test.ct");
  EXPECT_NE(text.find("test.ct:1:11: warning:"), std::string::npos);
  EXPECT_NE(text.find("f1 vm1 -> vm1 size 1M"), std::string::npos);  // Echoed line.
  EXPECT_NE(text.find("^"), std::string::npos);                      // Caret.
  EXPECT_NE(text.find("hint:"), std::string::npos);
  EXPECT_NE(text.find("[W020]"), std::string::npos);
  EXPECT_NE(text.find("0 errors, 1 warning"), std::string::npos);
}

TEST(RenderTest, JsonIsMachineReadable) {
  const DiagnosticSink sink = Analyze("f1 vm1 -> vm1 size 1M\n");
  const std::string json = DiagnosticsToJson(sink.diagnostics(), "q.ct");
  EXPECT_NE(json.find("\"file\": \"q.ct\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"W020\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"column\": 11"), std::string::npos);
}

TEST(RenderTest, JsonEscapesSpecialCharacters) {
  DiagnosticSink sink;
  sink.AddError("E001", Span{1, 1, 1}, "bad \"quote\" and \\slash\\");
  const std::string json = DiagnosticsToJson(sink.diagnostics(), "a\"b.ct");
  EXPECT_NE(json.find("a\\\"b.ct"), std::string::npos);
  EXPECT_NE(json.find("bad \\\"quote\\\" and \\\\slash\\\\"), std::string::npos);
}

// ---- DiagnosticSink mechanics ----

TEST(SinkTest, DeduplicatesSameCodeAndSpan) {
  DiagnosticSink sink;
  sink.AddError("E010", Span{1, 1, 1}, "first");
  sink.AddError("E010", Span{1, 1, 1}, "second (dropped)");
  sink.AddError("E010", Span{2, 1, 1}, "different line (kept)");
  EXPECT_EQ(sink.error_count(), 2);
}

TEST(SinkTest, PromoteWarningsMakesThemErrors) {
  DiagnosticSink sink;
  sink.AddWarning("W020", Span{1, 1, 1}, "self flow");
  EXPECT_EQ(sink.max_severity(), Severity::kWarning);
  EXPECT_FALSE(sink.has_errors());
  sink.PromoteWarnings();
  EXPECT_EQ(sink.max_severity(), Severity::kError);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.error_count(), 1);
  EXPECT_EQ(sink.warning_count(), 0);
}

TEST(SinkTest, SortByPositionIsStable) {
  DiagnosticSink sink;
  sink.AddWarning("W001", Span{3, 1, 1}, "third");
  sink.AddError("E001", Span{1, 5, 1}, "first");
  sink.AddError("E002", Span{1, 5, 1}, "also first position, emitted later");
  sink.SortByPosition();
  ASSERT_EQ(sink.diagnostics().size(), 3u);
  EXPECT_EQ(sink.diagnostics()[0].code, "E001");
  EXPECT_EQ(sink.diagnostics()[1].code, "E002");
  EXPECT_EQ(sink.diagnostics()[2].code, "W001");
}

// ---- W060 estimate helper ----

TEST(EstimateTest, FallingFactorialForSharedPool) {
  DiagnosticSink sink;
  const Query query = ParseWithDiagnostics(
      "A = B = C = " + BigPool(60) + "\nf1 A -> B size 1M\nf2 B -> C size 1M\n", &sink);
  ASSERT_FALSE(sink.has_errors());
  // Distinct bindings from one 60-entry pool: 60 * 59 * 58.
  EXPECT_DOUBLE_EQ(EstimateBindingCount(query), 60.0 * 59.0 * 58.0);
}

TEST(EstimateTest, SmallQueriesAreBelowThreshold) {
  DiagnosticSink sink;
  const Query query = ParseWithDiagnostics(
      "A = (vm1 vm2 vm3)\nf1 A -> vm4 size 1M\n", &sink);
  ASSERT_FALSE(sink.has_errors());
  EXPECT_LT(EstimateBindingCount(query), kSearchSpaceWarnThreshold);
}

// ---- Lexer diagnostics ----

TEST(LexerDiagnosticsTest, BadCharacterRecovered) {
  DiagnosticSink sink;
  const std::vector<Token> tokens = TokenizeWithDiagnostics("a $ b", &sink);
  EXPECT_TRUE(HasCode(sink, "E001"));
  // The surrounding tokens survive the bad character.
  int idents = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kIdent) {
      ++idents;
    }
  }
  EXPECT_EQ(idents, 2);
}

TEST(LexerDiagnosticsTest, TokenSpansHaveLengths) {
  DiagnosticSink sink;
  const std::vector<Token> tokens = TokenizeWithDiagnostics("hello -> 1.2.3.4", &sink);
  ASSERT_TRUE(sink.empty());
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].span().length, 5);  // "hello"
  EXPECT_EQ(tokens[1].span().length, 2);  // "->"
  EXPECT_EQ(tokens[2].span().length, 7);  // "1.2.3.4"
}

}  // namespace
}  // namespace lang
}  // namespace cloudtalk
