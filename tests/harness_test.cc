// Tests for the cluster harness: wiring, status sweeps, background load,
// CloudTalk-over-fluid end-to-end behaviour.
#include <gtest/gtest.h>

#include "src/harness/cluster.h"
#include "src/harness/profiles.h"

namespace cloudtalk {
namespace {

TEST(ProfilesTest, ShapesMatchPaperTestbeds) {
  const Topology local = LocalGigabitCluster();
  EXPECT_EQ(local.hosts().size(), 20u);
  EXPECT_DOUBLE_EQ(local.host_caps(local.hosts()[0]).nic_up, 1e9);

  const Topology tengig = LocalTenGigCluster();
  EXPECT_DOUBLE_EQ(tengig.host_caps(tengig.hosts()[0]).nic_up, 1e10);
  // "the 10Gbps interconnect can be used to overwhelm any of our disks".
  EXPECT_GT(tengig.host_caps(tengig.hosts()[0]).nic_up,
            tengig.host_caps(tengig.hosts()[0]).disk_write);

  const Topology ec2 = Ec2Cluster(101);
  EXPECT_EQ(ec2.hosts().size(), 101u);
  EXPECT_DOUBLE_EQ(ec2.host_caps(ec2.hosts()[0]).nic_up, 5e8);
}

TEST(ProfilesTest, HddDowngrade) {
  Topology topo = LocalGigabitCluster();
  const Bps before = topo.host_caps(topo.hosts()[0]).disk_read;
  DowngradeDisksToHdd(topo, 4, 8.0);
  EXPECT_DOUBLE_EQ(topo.host_caps(topo.hosts()[0]).disk_read, before / 8.0);
  EXPECT_DOUBLE_EQ(topo.host_caps(topo.hosts()[3]).disk_read, before / 8.0);
  EXPECT_DOUBLE_EQ(topo.host_caps(topo.hosts()[4]).disk_read, before);
}

TEST(ClusterTest, StatusReflectsFluidLoadAfterMeasure) {
  Cluster cluster(LocalGigabitCluster(4));
  const NodeId a = cluster.host(0);
  const NodeId b = cluster.host(1);
  cluster.AddBackgroundPair(a, b, 700 * kMbps);
  cluster.MeasureNow();
  auto reply = cluster.transport().Probe({a, b}, 0.01);
  ASSERT_EQ(reply.reports.size(), 2u);
  EXPECT_NEAR(reply.reports.at(a).nic_tx_use, 700e6, 1e3);
  EXPECT_NEAR(reply.reports.at(b).nic_rx_use, 700e6, 1e3);
}

TEST(ClusterTest, StatusIsStaleBetweenSweeps) {
  ClusterOptions options;
  options.status_period = 0.1;
  Cluster cluster(LocalGigabitCluster(4), options);
  cluster.StartStatusSweep();
  const NodeId a = cluster.host(0);
  const NodeId b = cluster.host(1);
  cluster.RunUntil(0.35);
  cluster.AddBackgroundPair(a, b, 700 * kMbps);  // Added between ticks.
  auto stale = cluster.transport().Probe({a}, 0.01);
  EXPECT_NEAR(stale.reports.at(a).nic_tx_use, 0.0, 1.0);  // Not yet seen.
  cluster.RunUntil(0.55);  // Next sweep happened.
  auto fresh = cluster.transport().Probe({a}, 0.01);
  EXPECT_NEAR(fresh.reports.at(a).nic_tx_use, 700e6, 1e3);
}

TEST(ClusterTest, BackgroundPairRemovable) {
  Cluster cluster(LocalGigabitCluster(4));
  const int handle = cluster.AddBackgroundPair(cluster.host(0), cluster.host(1), 500 * kMbps);
  cluster.RemoveBackgroundPair(handle);
  cluster.MeasureNow();
  auto reply = cluster.transport().Probe({cluster.host(0)}, 0.01);
  EXPECT_NEAR(reply.reports.at(cluster.host(0)).nic_tx_use, 0.0, 1.0);
  cluster.RemoveBackgroundPair(handle);  // Idempotent.
}

TEST(ClusterTest, DiskLoadAffectsDiskUsageOnly) {
  Cluster cluster(LocalGigabitCluster(4));
  const NodeId a = cluster.host(0);
  cluster.AddDiskLoad(a, 2 * kGbps, 1 * kGbps);
  cluster.MeasureNow();
  auto reply = cluster.transport().Probe({a}, 0.01);
  EXPECT_NEAR(reply.reports.at(a).disk_read_use, 2e9, 1e3);
  EXPECT_NEAR(reply.reports.at(a).disk_write_use, 1e9, 1e3);
  EXPECT_NEAR(reply.reports.at(a).nic_tx_use, 0.0, 1.0);
}

TEST(ClusterTest, CloudTalkPicksIdleHostEndToEnd) {
  // Full pipeline: fluid load -> status sweep -> probe -> heuristic.
  Cluster cluster(LocalGigabitCluster(6));
  cluster.StartStatusSweep();
  // Load host 1's downlink and host 2's uplink.
  cluster.AddBackgroundPair(cluster.host(3), cluster.host(1), 900 * kMbps);
  cluster.AddBackgroundPair(cluster.host(2), cluster.host(4), 900 * kMbps);
  cluster.RunUntil(0.25);
  // Who should client host 0 read a replica from? Host 5 (idle) over
  // host 2 (busy uplink).
  auto reply = cluster.cloudtalk().Answer(
      "src = (" + cluster.ip(2) + " " + cluster.ip(5) + ")\n"
      "f1 disk -> src size 256M rate r(f2)\n"
      "f2 src -> " + cluster.ip(0) + " size 256M rate r(f1)\n");
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(reply.value().binding.at("src").name, cluster.ip(5));
}

TEST(ClusterTest, PerHostServersHaveIndependentReservations) {
  Cluster cluster(LocalGigabitCluster(6));
  const std::string query = "src = (" + cluster.ip(1) + " " + cluster.ip(2) + ")\n" +
                            "f1 src -> " + cluster.ip(0) + " size 256M\n";
  auto a = cluster.cloudtalk_at(cluster.host(3)).Answer(query);
  auto b = cluster.cloudtalk_at(cluster.host(4)).Answer(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Different servers do not see each other's reservations, so both may
  // recommend the same endpoint (the distributed-reads regime of §5.5).
  EXPECT_EQ(a.value().binding.at("src").name, b.value().binding.at("src").name);
  // The same server, however, avoids its own reservation.
  auto c = cluster.cloudtalk_at(cluster.host(3)).Answer(query);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(c.value().binding.at("src").name, a.value().binding.at("src").name);
}


TEST(ClusterTest, ScalarRequirementsSteerPlacement) {
  // Section 7 extension: a CPU-starved host loses a reduce-style placement
  // even though its I/O is idle.
  Cluster cluster(LocalGigabitCluster(4));
  cluster.SetScalarUse(cluster.host(1), /*cpu_cores_used=*/7.5, /*mem_used=*/0);
  cluster.MeasureNow();
  auto reply = cluster.cloudtalk().Answer(
      "X = (" + cluster.ip(1) + " " + cluster.ip(2) + ")\n" +
      "X requires cpu 4\n" +
      "f1 0.0.0.0 -> X size 1G\n");
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(reply.value().binding.at("X").name, cluster.ip(2));
}

}  // namespace
}  // namespace cloudtalk
