// Tests for the observability layer (src/obs): the metrics registry, the
// per-query span tracer, the Prometheus endpoint, and the two ISSUE 5
// trace guarantees —
//   golden:   the fixed-seed hdfs_write.ct answer produces a byte-stable
//             span tree, snapshot-diffed against
//             examples/queries/trace/expected_trace.txt (regenerate with
//             `ctstat --trace --stable examples/queries/good/hdfs_write.ct`);
//   property: for every good fixture, the span tree is well-formed — one
//             root, every span closed, sibling phases do not overlap, and
//             the probe fan-out children match ProbeStats exactly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/status/metrics_endpoint.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(MetricCatalogTest, CodesAreOrderedAndWellFormed) {
  const std::vector<MetricInfo>& catalog = MetricCatalog();
  ASSERT_FALSE(catalog.empty());
  for (size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string(catalog[i - 1].code), std::string(catalog[i].code))
        << "catalogue must stay in M-code order";
  }
  for (const MetricInfo& info : catalog) {
    EXPECT_EQ(info.code[0], 'M') << info.code;
    EXPECT_NE(std::string(info.name), "");
    EXPECT_NE(std::string(info.help), "");
    EXPECT_NE(info.subsystem, nullptr);
  }
}

TEST(MetricCatalogTest, FindMetricResolvesEveryCodeAndRejectsUnknown) {
  for (const MetricInfo& info : MetricCatalog()) {
    const MetricInfo* found = FindMetric(info.code);
    ASSERT_NE(found, nullptr) << info.code;
    EXPECT_EQ(found, &info);
  }
  EXPECT_EQ(FindMetric("M999"), nullptr);
  EXPECT_EQ(FindMetric(""), nullptr);
  EXPECT_EQ(FindMetric("W001"), nullptr);
}

TEST(MetricTypeTest, NamesRoundTrip) {
  EXPECT_STREQ(MetricTypeName(MetricType::kCounter), "counter");
  EXPECT_STREQ(MetricTypeName(MetricType::kGauge), "gauge");
  EXPECT_STREQ(MetricTypeName(MetricType::kHistogram), "histogram");
}

TEST(RegistryTest, CountersAccumulate) {
  Registry registry;
  Counter* c = registry.counter("M100");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0);
  c->Inc();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  // Same code resolves to the same instrument.
  EXPECT_EQ(registry.counter("M100"), c);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
}

TEST(RegistryTest, GaugeSetAndAdd) {
  Registry registry;
  Gauge* g = registry.gauge("M400");
  g->Set(3.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
  g->Add(-5.0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
}

TEST(RegistryTest, HistogramBucketsAreLogScaleCumulative) {
  Registry registry;
  Histogram* h = registry.histogram("M102");
  const HistogramSpec& spec = h->spec();
  EXPECT_DOUBLE_EQ(h->UpperBound(0), spec.base);
  EXPECT_DOUBLE_EQ(h->UpperBound(1), spec.base * spec.growth);

  h->Observe(spec.base / 2);               // Bucket 0.
  h->Observe(spec.base * spec.growth);     // Bucket 1 (<= bound).
  h->Observe(1e12);                        // +Inf bucket.
  EXPECT_EQ(h->count(), 3);
  EXPECT_GE(h->sum(), 1e12);  // The sub-ulp micro observations vanish in the double sum.
  EXPECT_EQ(h->CumulativeCount(0), 1);
  EXPECT_EQ(h->CumulativeCount(1), 2);
  EXPECT_EQ(h->CumulativeCount(spec.buckets - 1), 2);
  EXPECT_EQ(h->CumulativeCount(spec.buckets), 3);  // +Inf == count().
  h->Reset();
  EXPECT_EQ(h->count(), 0);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
}

TEST(RegistryTest, LabeledChildrenAreDistinctAndReset) {
  Registry registry;
  Histogram* a = registry.histogram("M200", "10.0.0.1");
  Histogram* b = registry.histogram("M200", "10.0.0.2");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.histogram("M200", "10.0.0.1"), a);
  a->Observe(1e-3);
  EXPECT_EQ(a->count(), 1);
  EXPECT_EQ(b->count(), 0);
  registry.Reset();  // Drops children.
  EXPECT_EQ(registry.histogram("M200", "10.0.0.1")->count(), 0);
}

TEST(RegistryTest, PrometheusRenderingIsWellFormed) {
  Registry registry;
  registry.counter("M100")->Add(7);
  registry.gauge("M400")->Set(2);
  registry.histogram("M102")->Observe(0.001);
  registry.histogram("M200", "10.0.0.1")->Observe(0.0002);
  const std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# TYPE cloudtalk_server_queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("cloudtalk_server_queries_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cloudtalk_pool_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("cloudtalk_server_answer_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cloudtalk_server_answer_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("cloudtalk_probe_rtt_seconds_bucket{host=\"10.0.0.1\",le="),
            std::string::npos);
  // Every line is either a comment or "name{labels} value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) << line;
    } else {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
  }
}

TEST(RegistryTest, JsonRenderingSkipsZeroInstrumentsByDefault) {
  Registry registry;
  EXPECT_EQ(registry.RenderJson(), "{\"metrics\": []}");
  registry.counter("M104")->Add(3);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"M104\""), std::string::npos);
  EXPECT_EQ(json.find("\"M100\""), std::string::npos);
  const std::string full = registry.RenderJson(/*skip_zero=*/false);
  EXPECT_NE(full.find("\"M100\""), std::string::npos);
}

TEST(RuntimeSwitchTest, DisabledMacrosRecordNothing) {
  Registry& registry = Registry::Instance();
  registry.Reset();
  SetRuntimeEnabled(false);
  CT_OBS_INC("M100");
  CT_OBS_OBSERVE("M102", 1.0);
  SetRuntimeEnabled(true);
  if (kObsEnabled) {
    EXPECT_EQ(registry.counter("M100")->value(), 0);
    EXPECT_EQ(registry.histogram("M102")->count(), 0);
  }
  CT_OBS_INC("M100");
  if (kObsEnabled) {
    EXPECT_EQ(registry.counter("M100")->value(), 1);
  }
  registry.Reset();
}

// ----------------------------------------------------------------- tracer

TEST(TraceTest, SpansNestCloseAndCarryAttrs) {
  TraceContext ctx("root");
  if (!kObsEnabled) {
    EXPECT_TRUE(ctx.Finish().empty());
    return;
  }
  const int outer = ctx.Open("outer");
  ctx.Attr(outer, "k", "v");
  ctx.Attr(outer, "n", static_cast<int64_t>(7));
  ctx.Attr(outer, "x", 2.5);
  const int inner = ctx.Open("inner");
  ctx.Close(inner);
  ctx.Close(outer);
  const Trace trace = ctx.Finish();
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].name(), "root");
  EXPECT_EQ(trace.spans[0].parent, -1);
  EXPECT_EQ(trace.spans[1].name(), "outer");
  EXPECT_EQ(trace.spans[1].parent, 0);
  EXPECT_EQ(trace.spans[2].name(), "inner");
  EXPECT_EQ(trace.spans[2].parent, 1);
  for (const TraceSpan& span : trace.spans) {
    EXPECT_TRUE(span.closed) << span.name();
    EXPECT_GE(span.duration, 0.0) << span.name();
  }
  const auto attrs = trace.AttrsOf(1);
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0], (std::pair<std::string, std::string>{"k", "v"}));
  EXPECT_EQ(attrs[1].second, "7");
  EXPECT_EQ(attrs[2].second, "2.5");
  EXPECT_TRUE(trace.AttrsOf(2).empty());
}

TEST(TraceTest, FinishClosesLeakedSpans) {
  TraceContext ctx("root");
  if (!kObsEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  ctx.Open("leaked");
  ctx.Open("leaked.child");
  const Trace trace = ctx.Finish();
  for (const TraceSpan& span : trace.spans) {
    EXPECT_TRUE(span.closed) << span.name();
  }
}

TEST(TraceTest, CloseOutOfOrderSelfHeals) {
  TraceContext ctx("root");
  if (!kObsEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const int outer = ctx.Open("outer");
  ctx.Open("inner");  // Never closed directly.
  ctx.Close(outer);   // Must close inner too.
  const Trace trace = ctx.Finish();
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_TRUE(trace.spans[2].closed);
}

TEST(TraceTest, TransitionSharesOneInstant) {
  TraceContext ctx("root");
  if (!kObsEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const int a = ctx.Open("a");
  const int b = ctx.Transition(a, "b");
  ctx.Close(b);
  const Trace trace = ctx.Finish();
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_TRUE(trace.spans[a].closed);
  EXPECT_EQ(trace.spans[b].parent, 0);  // Sibling, not child, of `a`.
  // `b` starts exactly where `a` ends: no gap and no overlap.
  EXPECT_DOUBLE_EQ(trace.spans[a].start + trace.spans[a].duration, trace.spans[b].start);
}

TEST(TraceTest, ScopedHelperClosesOnExit) {
  TraceContext ctx("root");
  if (!kObsEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  {
    TraceContext::Scoped scoped(&ctx, "scoped");
    EXPECT_GE(scoped.id(), 0);
  }
  const Trace trace = ctx.Finish();
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_TRUE(trace.spans[1].closed);
}

TEST(TraceTest, DisabledContextRecordsNothing) {
  SetRuntimeEnabled(false);
  TraceContext ctx("root");
  const int id = ctx.Open("child");
  EXPECT_EQ(id, -1);
  ctx.Attr(id, "k", "v");
  ctx.Close(id);
  EXPECT_TRUE(ctx.Finish().empty());
  SetRuntimeEnabled(true);
}

TEST(TraceRenderTest, StableFormatElidesDurations) {
  Trace trace;
  TraceSpan root;
  root.id = 0;
  root.parent = -1;
  root.set_name("answer");
  root.duration = 0.001234;
  root.closed = true;
  TraceSpan child;
  child.id = 1;
  child.parent = 0;
  child.set_name("parse");
  child.closed = true;
  trace.spans = {root, child};
  trace.attr_data = "bytes=120";
  trace.attrs = {TraceAttr{1, 0, 9}};

  EXPECT_EQ(FormatTrace(trace, /*stable=*/true), "answer (-)\n  parse (-) bytes=120\n");
  const std::string timed = FormatTrace(trace, /*stable=*/false);
  EXPECT_NE(timed.find("answer (1234.0us)"), std::string::npos);

  const std::string json = TraceToJson(trace, /*stable=*/true);
  EXPECT_NE(json.find("\"duration_us\": 0.0"), std::string::npos);
  EXPECT_NE(json.find("\"attrs\": {\"bytes\": \"120\"}"), std::string::npos);
}

// --------------------------------------------------- harness trace shapes

Cluster MakeTestCluster() {
  SingleSwitchParams params;
  params.num_hosts = 16;
  params.host_caps.nic_up = 1 * kGbps;
  params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = 4 * kGbps;
  params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.seed = 1;
  options.server.seed = 1;
  options.server.eval_threads = 1;
  return Cluster(MakeSingleSwitch(params), options);
}

std::string ReadFileOrDie(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const TraceSpan* FindSpan(const Trace& trace, const std::string& name) {
  for (const TraceSpan& span : trace.spans) {
    if (span.name() == name) {
      return &span;
    }
  }
  return nullptr;
}

// Golden snapshot: the stable rendering of the fixed-seed hdfs_write.ct
// trace must match the checked-in file byte for byte (same contract as the
// ctopt expected_report.txt snapshot).
TEST(TraceGoldenTest, HdfsWriteTraceMatchesSnapshot) {
  if (!kObsEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const std::filesystem::path dir(CLOUDTALK_QUERY_DIR);
  const std::string query = ReadFileOrDie(dir / "good" / "hdfs_write.ct");
  // The snapshot is the verbatim ctstat output, whose first line is the
  // query file name; the span tree starts after it.
  std::string expected = ReadFileOrDie(dir / "trace" / "expected_trace.txt");
  const size_t header_end = expected.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  expected = expected.substr(header_end + 1);

  Cluster cluster = MakeTestCluster();
  cluster.StartStatusSweep();
  cluster.MeasureNow();
  const Result<QueryReply> reply = cluster.cloudtalk().Answer(query);
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  EXPECT_EQ(FormatTrace(reply.value().trace, /*stable=*/true), expected)
      << "regenerate with: ctstat --trace --stable examples/queries/good/hdfs_write.ct";
}

// Property: every good fixture's trace is a well-formed phase tree.
TEST(TracePropertyTest, GoodFixtureTracesAreWellFormed) {
  if (!kObsEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const std::filesystem::path good_dir =
      std::filesystem::path(CLOUDTALK_QUERY_DIR) / "good";
  std::vector<std::filesystem::path> fixtures;
  for (const auto& entry : std::filesystem::directory_iterator(good_dir)) {
    if (entry.path().extension() == ".ct") {
      fixtures.push_back(entry.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  ASSERT_FALSE(fixtures.empty());

  for (const std::filesystem::path& fixture : fixtures) {
    SCOPED_TRACE(fixture.filename().string());
    Cluster cluster = MakeTestCluster();
    cluster.StartStatusSweep();
    cluster.MeasureNow();
    const Result<QueryReply> reply = cluster.cloudtalk().Answer(ReadFileOrDie(fixture));
    ASSERT_TRUE(reply.ok()) << reply.error().message;
    const Trace& trace = reply.value().trace;
    ASSERT_FALSE(trace.empty());

    // Exactly one root, which is span 0, named "answer".
    int roots = 0;
    for (const TraceSpan& span : trace.spans) {
      roots += span.parent < 0 ? 1 : 0;
    }
    EXPECT_EQ(roots, 1);
    EXPECT_EQ(trace.spans[0].parent, -1);
    EXPECT_EQ(trace.spans[0].name(), "answer");

    // Every span is closed, has a valid parent, ids match positions, and
    // lies inside its parent's interval.
    for (size_t i = 0; i < trace.spans.size(); ++i) {
      const TraceSpan& span = trace.spans[i];
      EXPECT_EQ(span.id, static_cast<int>(i));
      EXPECT_TRUE(span.closed) << span.name();
      EXPECT_GE(span.duration, 0.0) << span.name();
      if (span.parent >= 0) {
        ASSERT_LT(span.parent, static_cast<int>(i)) << span.name();
        const TraceSpan& parent = trace.spans[span.parent];
        EXPECT_GE(span.start, parent.start - 1e-9) << span.name();
        EXPECT_LE(span.start + span.duration, parent.start + parent.duration + 1e-9)
            << span.name() << " escapes " << parent.name();
      }
    }

    // The full phase skeleton is present on every reply.
    for (const char* phase : {"parse", "lint", "canon", "compile", "sample", "probe",
                              "bound", "bind", "reserve"}) {
      EXPECT_NE(FindSpan(trace, phase), nullptr) << "missing phase span " << phase;
    }

    // Sibling phases never overlap in time.
    std::map<int, std::vector<const TraceSpan*>> by_parent;
    for (const TraceSpan& span : trace.spans) {
      if (span.parent >= 0) {
        by_parent[span.parent].push_back(&span);
      }
    }
    for (auto& [parent, siblings] : by_parent) {
      std::vector<const TraceSpan*> sorted = siblings;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [](const TraceSpan* a, const TraceSpan* b) { return a->start < b->start; });
      for (size_t i = 1; i < sorted.size(); ++i) {
        EXPECT_GE(sorted[i]->start, sorted[i - 1]->start + sorted[i - 1]->duration - 1e-9)
            << sorted[i - 1]->name() << " overlaps " << sorted[i]->name() << " under parent "
            << trace.spans[parent].name();
      }
    }

    // Probe fan-out children match the probe accounting exactly: one
    // probe.host child per request the transport actually sent.
    const TraceSpan* probe = FindSpan(trace, "probe");
    ASSERT_NE(probe, nullptr);
    int host_children = 0;
    for (const TraceSpan& span : trace.spans) {
      if (span.name() == "probe.host") {
        EXPECT_EQ(span.parent, probe->id);
        ++host_children;
      }
    }
    EXPECT_EQ(host_children, reply.value().probe_stats.requests_sent);
  }
}

// ------------------------------------------------------ metrics endpoint

// Minimal HTTP client for the loopback endpoint.
std::string HttpGet(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsEndpointTest, ServesPrometheusText) {
  Registry::Instance().Reset();
  CT_OBS_INC("M100");
  MetricsEndpoint endpoint;
  ASSERT_TRUE(endpoint.Start());
  ASSERT_GT(endpoint.port(), 0);

  const std::string response =
      HttpGet(endpoint.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  if (kObsEnabled) {
    EXPECT_NE(response.find("cloudtalk_server_queries_total 1"), std::string::npos);
  }

  const std::string index = HttpGet(endpoint.port(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_NE(index.find("200 OK"), std::string::npos);
  EXPECT_NE(index.find("/metrics"), std::string::npos);

  const std::string missing = HttpGet(endpoint.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  const std::string post = HttpGet(endpoint.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  EXPECT_GE(endpoint.requests_served(), 4);
  endpoint.Stop();
  Registry::Instance().Reset();
}

}  // namespace
}  // namespace obs
}  // namespace cloudtalk
