// Tests for the mini-HDFS substrate.
#include <gtest/gtest.h>

#include <set>

#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/hdfs/mini_hdfs.h"

namespace cloudtalk {
namespace {

TEST(MiniHdfsTest, WriteCreatesReplicatedBlocks) {
  Cluster cluster(LocalGigabitCluster(8));
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  Seconds end = -1;
  ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f", 768 * kMB, [&](Seconds, Seconds t) {
    end = t;
  }));
  ASSERT_TRUE(cluster.sim().RunUntilIdle());
  EXPECT_GT(end, 0);
  const MiniHdfs::FileInfo* file = hdfs.GetFile("f");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(file->block_replicas.size(), 3u);  // 768 MB / 256 MB.
  for (const auto& replicas : file->block_replicas) {
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], cluster.host(0));  // First replica local.
    std::set<NodeId> unique(replicas.begin(), replicas.end());
    EXPECT_EQ(unique.size(), 3u);
  }
  EXPECT_EQ(hdfs.blocks_written(), 3);
}

TEST(MiniHdfsTest, WriteTimeMatchesPipelineBottleneck) {
  // Idle cluster: a 256 MB block daisy chain moves at the slowest coupled
  // resource. With 1 Gbps NICs and ~3 Gbps disks, the network dominates:
  // t ~ size * 8 / 1 Gbps per block.
  Cluster cluster(LocalGigabitCluster(8));
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  Seconds start = -1;
  Seconds end = -1;
  ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f", 256 * kMB, [&](Seconds s, Seconds t) {
    start = s;
    end = t;
  }));
  ASSERT_TRUE(cluster.sim().RunUntilIdle());
  const Seconds expected = 256 * kMB * 8 / 1e9;
  EXPECT_NEAR(end - start, expected, expected * 0.05);
}

TEST(MiniHdfsTest, ReadFromInstalledFile) {
  Cluster cluster(LocalGigabitCluster(8));
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  hdfs.InstallFile("data", 512 * kMB,
                   {{cluster.host(1), cluster.host(2), cluster.host(3)},
                    {cluster.host(2), cluster.host(4), cluster.host(5)}});
  Seconds end = -1;
  ASSERT_TRUE(hdfs.ReadFile(cluster.host(0), "data", [&](Seconds, Seconds t) { end = t; }));
  ASSERT_TRUE(cluster.sim().RunUntilIdle());
  EXPECT_GT(end, 0);
  EXPECT_EQ(hdfs.blocks_read(), 2);
  // Two sequential 256 MB blocks at ~1 Gbps.
  EXPECT_NEAR(end, 2 * 256 * kMB * 8 / 1e9, 0.5);
}

TEST(MiniHdfsTest, DuplicateWriteRejected) {
  Cluster cluster(LocalGigabitCluster(4));
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f", 1 * kMB, nullptr));
  EXPECT_FALSE(hdfs.WriteFile(cluster.host(0), "f", 1 * kMB, nullptr));
  EXPECT_FALSE(hdfs.ReadFile(cluster.host(0), "missing", nullptr));
}

TEST(MiniHdfsTest, CloudTalkWriteAvoidsBusyNode) {
  ClusterOptions options;
  options.seed = 7;
  Cluster cluster(LocalGigabitCluster(5), options);
  cluster.StartStatusSweep();
  // Hosts 1 and 2 saturate each other (both directions busy); 3 and 4 are
  // idle. A CloudTalk write from host 0 must pick {3, 4} as remote replicas.
  cluster.AddBackgroundPair(cluster.host(1), cluster.host(2), 950 * kMbps);
  cluster.AddBackgroundPair(cluster.host(2), cluster.host(1), 950 * kMbps);
  cluster.RunUntil(0.25);
  HdfsOptions hdfs_options;
  hdfs_options.cloudtalk_writes = true;
  MiniHdfs hdfs(&cluster, hdfs_options);
  ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f", 256 * kMB, nullptr));
  cluster.sim().RunUntil(cluster.now() + 30);
  const MiniHdfs::FileInfo* file = hdfs.GetFile("f");
  ASSERT_NE(file, nullptr);
  const auto& replicas = file->block_replicas[0];
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0], cluster.host(0));
  std::set<NodeId> remote(replicas.begin() + 1, replicas.end());
  EXPECT_TRUE(remote.count(cluster.host(3)) == 1);
  EXPECT_TRUE(remote.count(cluster.host(4)) == 1);
}

TEST(MiniHdfsTest, CloudTalkReadPicksIdleReplica) {
  Cluster cluster(LocalGigabitCluster(6));
  cluster.StartStatusSweep();
  cluster.AddBackgroundPair(cluster.host(1), cluster.host(5), 900 * kMbps);  // 1 tx-busy.
  cluster.RunUntil(0.25);
  HdfsOptions options;
  options.cloudtalk_reads = true;
  MiniHdfs hdfs(&cluster, options);
  hdfs.InstallFile("data", 256 * kMB, {{cluster.host(1), cluster.host(2)}});
  Seconds end = -1;
  ASSERT_TRUE(hdfs.ReadFile(cluster.host(0), "data", [&](Seconds, Seconds t) { end = t; }));
  cluster.sim().RunUntil(cluster.now() + 30);
  // Reading from the idle host 2 at ~1 Gbps (the busy replica would be ~10x
  // slower against inelastic background).
  EXPECT_GT(end, 0);
  EXPECT_NEAR(end - 0.25, 256 * kMB * 8 / 1e9, 1.0);
}


TEST(MiniHdfsTest, ReadRateCapModelsCpuBoundClient) {
  Cluster cluster(LocalTenGigCluster(4));
  HdfsOptions options;
  options.read_rate_cap = 2 * kGbps;  // CPU-bound below the 4 Gbps disk.
  MiniHdfs hdfs(&cluster, options);
  hdfs.InstallFile("data", 256 * kMB, {{cluster.host(1), cluster.host(2)}});
  Seconds end = -1;
  ASSERT_TRUE(hdfs.ReadFile(cluster.host(0), "data", [&](Seconds, Seconds t) { end = t; }));
  ASSERT_TRUE(cluster.sim().RunUntilIdle());
  EXPECT_NEAR(end, 256 * kMB * 8 / 2e9, 1e-3);  // Paced at the cap.
}

TEST(MiniHdfsTest, DatanodeRestrictionHonoured) {
  Cluster cluster(LocalGigabitCluster(8));
  HdfsOptions options;
  options.datanodes = {cluster.host(0), cluster.host(1), cluster.host(2), cluster.host(3)};
  MiniHdfs hdfs(&cluster, options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f" + std::to_string(i), 64 * kMB, nullptr));
  }
  ASSERT_TRUE(cluster.sim().RunUntilIdle());
  for (int i = 0; i < 5; ++i) {
    for (NodeId replica : hdfs.GetFile("f" + std::to_string(i))->block_replicas[0]) {
      EXPECT_LE(replica, cluster.host(3));  // Never outside the datanode set.
    }
  }
}

TEST(MiniHdfsTest, SequentialBlocksDoNotOverlap) {
  Cluster cluster(LocalGigabitCluster(8));
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  Seconds end = -1;
  ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f", 512 * kMB, [&](Seconds, Seconds t) {
    end = t;
  }));
  ASSERT_TRUE(cluster.sim().RunUntilIdle());
  // Two blocks in sequence take ~2x one block.
  const Seconds one_block = 256 * kMB * 8 / 1e9;
  EXPECT_GT(end, 1.9 * one_block);
}

}  // namespace
}  // namespace cloudtalk
