// Tests for the Section 3 probing module: traceroute/ping inference and
// iperf-style capacity probing (including multi-tenant interference).
#include <gtest/gtest.h>

#include <set>

#include "src/probing/prober.h"

namespace cloudtalk {
namespace probing {
namespace {

Topology SmallVl2(int racks = 4, int per_rack = 5) {
  Vl2Params params;
  params.num_racks = racks;
  params.hosts_per_rack = per_rack;
  params.link_delay = 10 * kMicrosecond;
  return MakeVl2(params);
}

TEST(ProberTest, HopCountsDistinguishRackLocality) {
  const Topology topo = SmallVl2();
  NetworkProber prober(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];  // Same rack.
  const NodeId c = topo.hosts()[5];  // Next rack.
  EXPECT_EQ(prober.Ping(a, a).hops, 0);
  const int same_rack = prober.Ping(a, b).hops;
  const int cross_rack = prober.Ping(a, c).hops;
  EXPECT_LT(same_rack, cross_rack);
  EXPECT_EQ(same_rack, 1);   // Via the ToR.
  EXPECT_EQ(cross_rack, 3);  // ToR - Agg - ToR.
}

TEST(ProberTest, RttCorrelatesWithHops) {
  // "ping times are correlated with the number of traceroute hops" (§3.1).
  const Topology topo = SmallVl2();
  NetworkProber prober(&topo, /*seed=*/3, /*rtt_jitter=*/1 * kMicrosecond);
  const PingResult near = prober.Ping(topo.hosts()[0], topo.hosts()[1]);
  const PingResult far = prober.Ping(topo.hosts()[0], topo.hosts()[6]);
  EXPECT_LT(near.rtt, far.rtt);
}

TEST(ProberTest, RackInferenceIsPerfectOnCleanData) {
  const Topology topo = SmallVl2(5, 6);
  NetworkProber prober(&topo);
  const std::vector<NodeId> hosts = topo.hosts();
  const auto hops = prober.HopMatrix(hosts);
  const std::vector<int> inferred = InferRacks(hops);
  EXPECT_DOUBLE_EQ(RackInferenceAccuracy(topo, hosts, inferred), 1.0);
  // Five distinct rack labels.
  std::set<int> labels(inferred.begin(), inferred.end());
  EXPECT_EQ(labels.size(), 5u);
}

TEST(ProberTest, InferenceHandlesSingleRack) {
  SingleSwitchParams params;
  params.num_hosts = 6;
  const Topology topo = MakeSingleSwitch(params);
  NetworkProber prober(&topo);
  const auto hops = prober.HopMatrix(topo.hosts());
  const std::vector<int> inferred = InferRacks(hops);
  std::set<int> labels(inferred.begin(), inferred.end());
  EXPECT_EQ(labels.size(), 1u);  // Everybody together.
}

TEST(CapacityProbeTest, IdleLinkMeasuresLineRate) {
  SingleSwitchParams params;
  params.num_hosts = 4;
  const Topology topo = MakeSingleSwitch(params);
  FluidSimulation sim(&topo);
  Bps measured = 0;
  StartCapacityProbe(&sim, topo.hosts()[0], topo.hosts()[1], 10 * kMB,
                     [&](Bps bw) { measured = bw; });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_NEAR(measured, 1e9, 1e6);
}

TEST(CapacityProbeTest, ConcurrentProbesUnderestimate) {
  // Two tenants probing the same destination each measure roughly half the
  // capacity — "probes from different tenants could overlap in time leading
  // to incorrect inferences about the available capacity" (§3.1).
  SingleSwitchParams params;
  params.num_hosts = 4;
  const Topology topo = MakeSingleSwitch(params);
  FluidSimulation sim(&topo);
  Bps tenant1 = 0;
  Bps tenant2 = 0;
  StartCapacityProbe(&sim, topo.hosts()[0], topo.hosts()[2], 10 * kMB,
                     [&](Bps bw) { tenant1 = bw; });
  StartCapacityProbe(&sim, topo.hosts()[1], topo.hosts()[2], 10 * kMB,
                     [&](Bps bw) { tenant2 = bw; });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_LT(tenant1, 0.7e9);
  EXPECT_LT(tenant2, 0.7e9);
}

TEST(CapacityProbeTest, ProbeDisturbsForegroundTraffic) {
  // Probing is "pure overhead from the cloud provider's viewpoint, and can
  // negatively influence the performance of tenants not doing probing".
  SingleSwitchParams params;
  params.num_hosts = 4;
  const Topology topo = MakeSingleSwitch(params);

  auto victim_time = [&](bool with_probe) {
    FluidSimulation sim(&topo);
    Seconds done = -1;
    GroupSpec victim;
    FluidFlow flow;
    flow.resources = sim.resources().NetworkPath(topo, topo.hosts()[0], topo.hosts()[1]);
    flow.size = 50 * kMB;
    victim.flows.push_back(std::move(flow));
    sim.AddGroup(std::move(victim), [&](GroupId, Seconds t) { done = t; });
    if (with_probe) {
      StartCapacityProbe(&sim, topo.hosts()[2], topo.hosts()[1], 50 * kMB, nullptr);
    }
    EXPECT_TRUE(sim.RunUntilIdle());
    return done;
  };
  EXPECT_GT(victim_time(true), victim_time(false) * 1.5);
}

}  // namespace
}  // namespace probing
}  // namespace cloudtalk
