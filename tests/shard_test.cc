// Tests for the sharded CloudTalk deployment (src/core/shard.h): the
// ShardMap partition, two-phase cross-shard reservations (prepare / commit
// / abort leases, I411), the I410 no-double-reserve property, unresponsive-
// shard abort, the N-slot admission gate's any-slot wakeup, merge
// determinism against the single server over every good fixture, and a
// concurrent admission stress run (the TSan CI job builds this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/check/check.h"
#include "src/core/admission.h"
#include "src/core/reservations.h"
#include "src/core/shard.h"
#include "src/harness/cluster.h"
#include "src/lang/parser.h"
#include "src/lang/scope.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

// ---- Two-phase reservation leases (src/core/reservations.h) ----

TEST(TwoPhaseReserveTest, PrepareCommitReservesLikeFlatReserve) {
  ReservationTable table(/*hold_time=*/1.0);
  const uint64_t lease = table.Prepare("10.0.0.1", /*now=*/0, /*lease_time=*/0.5);
  ASSERT_NE(lease, 0u);
  EXPECT_EQ(table.PreparedCount(0.1), 1);
  // A live lease already holds the endpoint against other queries.
  EXPECT_TRUE(table.IsReserved("10.0.0.1", 0.1));
  EXPECT_TRUE(table.Commit(lease, /*now=*/0.2));
  EXPECT_EQ(table.PreparedCount(0.2), 0);
  // Committed at 0.2 with hold 1.0: reserved until 1.2, exactly like a
  // single-table Reserve("10.0.0.1", 0.2).
  EXPECT_TRUE(table.IsReserved("10.0.0.1", 1.1));
  EXPECT_FALSE(table.IsReserved("10.0.0.1", 1.3));
}

TEST(TwoPhaseReserveTest, ExpiredLeaseFreesTheHostAndRefusesCommit) {
  ReservationTable table(/*hold_time=*/1.0);
  const uint64_t lease = table.Prepare("10.0.0.2", /*now=*/0, /*lease_time=*/0.1);
  ASSERT_NE(lease, 0u);
  EXPECT_TRUE(table.IsReserved("10.0.0.2", 0.05));
  // Past the lease deadline the host is free again — a crashed front end
  // that prepared but never committed cannot hold it forever.
  EXPECT_FALSE(table.IsReserved("10.0.0.2", 0.2));
  EXPECT_EQ(table.PreparedCount(0.2), 0);
  // A late commit is refused (returns false, reserves nothing) but does NOT
  // fire I411: the lease was real, it just timed out.
  EXPECT_FALSE(table.Commit(lease, /*now=*/0.2));
  EXPECT_FALSE(table.IsReserved("10.0.0.2", 0.3));
}

TEST(TwoPhaseReserveTest, AbortFreesImmediately) {
  ReservationTable table(/*hold_time=*/1.0);
  const uint64_t lease = table.Prepare("10.0.0.3", /*now=*/0, /*lease_time=*/10.0);
  ASSERT_NE(lease, 0u);
  EXPECT_TRUE(table.Abort(lease));
  EXPECT_FALSE(table.IsReserved("10.0.0.3", 0.01));
  EXPECT_EQ(table.PreparedCount(0.01), 0);
  EXPECT_EQ(table.ActiveCount(0.01), 0);
}

TEST(TwoPhaseReserveTest, CommitWithoutPrepareFiresI411) {
  if (!check::kInvariantsEnabled) {
    GTEST_SKIP() << "built without CLOUDTALK_INVARIANTS";
  }
  const check::OnViolation saved = check::GetViolationPolicy();
  check::SetViolationPolicy(check::OnViolation::kThrow);
  ReservationTable table(/*hold_time=*/1.0);
  EXPECT_THROW(table.Commit(/*lease_id=*/12345, /*now=*/0), check::InvariantViolation);
  // Double-commit: the first consumes the lease, the second is unmatched.
  const uint64_t lease = table.Prepare("10.0.0.4", 0, 1.0);
  EXPECT_TRUE(table.Commit(lease, 0.1));
  EXPECT_THROW(table.Commit(lease, 0.2), check::InvariantViolation);
  EXPECT_THROW(table.Abort(lease), check::InvariantViolation);
  check::SetViolationPolicy(saved);
}

// ---- ShardMap: a total partition ----

TEST(ShardMapTest, EveryNodeOwnedByExactlyOneShard) {
  for (const int shards : {1, 2, 4, 7}) {
    const ShardMap map(shards);
    std::vector<int> owned(shards, 0);
    for (NodeId node = 0; node < 64; ++node) {
      const int owner = map.ShardOf(node);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, shards);
      owned[owner] += 1;
      // Deterministic: asking twice gives the same owner.
      EXPECT_EQ(map.ShardOf(node), owner);
    }
    // With 64 nodes and <= 7 shards, every shard owns someone.
    for (const int count : owned) {
      EXPECT_GT(count, 0);
    }
  }
  // Degenerate shard counts clamp to one shard rather than dividing by zero.
  EXPECT_EQ(ShardMap(0).shards(), 1);
  EXPECT_EQ(ShardMap(-3).shards(), 1);
}

// ---- Sharded server on a live cluster ----

Cluster MakeShardCluster(int hosts, uint64_t seed, Seconds hold, int slots = 2) {
  SingleSwitchParams params;
  params.num_hosts = hosts;
  params.host_caps.nic_up = params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.seed = seed;
  options.server.seed = seed;
  options.server.eval_threads = 1;
  options.server.reservation_hold = hold;
  options.server.admission_slots = slots;
  Cluster cluster(MakeSingleSwitch(params), options);
  cluster.StartStatusSweep();
  return cluster;
}

ShardedConfig ShardConfigFor(Cluster* cluster, int shards) {
  ShardedConfig cfg;
  cfg.server = cluster->cloudtalk().config();
  cfg.shards = shards;
  return cfg;
}

TEST(ShardedServerTest, ReservationLandsOnExactlyTheOwningShard) {
  Cluster cluster = MakeShardCluster(16, /*seed=*/5, /*hold=*/60.0);
  cluster.MeasureNow();
  ShardedServer sharded(ShardConfigFor(&cluster, 4), &cluster.directory(),
                        &cluster.transport(), [&cluster] { return cluster.now(); });
  const std::string query = "option static\nA = (" + cluster.ip(1) + " " + cluster.ip(2) +
                            " " + cluster.ip(3) + ")\nf1 A -> " + cluster.ip(0) +
                            " size 8M\n";
  const Result<QueryReply> reply = sharded.Answer(query);
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  const std::string picked = reply.value().binding.at("A").name;
  ASSERT_FALSE(picked.empty());
  // I410: the pick is reserved on its owner shard and nowhere else.
  const int owner = sharded.shard_map().ShardOf(cluster.directory().Resolve(picked));
  const Seconds now = cluster.now();
  int holders = 0;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    if (sharded.shard(s).reservations().IsReserved(picked, now)) {
      EXPECT_EQ(s, owner);
      holders += 1;
    }
  }
  EXPECT_EQ(holders, 1);
  EXPECT_TRUE(sharded.IsReservedAnywhere(picked, now));
  // Nothing is left in the prepared state after a committed reserve.
  for (int s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard(s).reservations().PreparedCount(now), 0);
  }
}

TEST(ShardedServerTest, UnresponsiveShardAbortsTheWholeTwoPhaseReserve) {
  Cluster cluster = MakeShardCluster(16, /*seed=*/5, /*hold=*/60.0);
  cluster.MeasureNow();
  ShardedServer sharded(ShardConfigFor(&cluster, 4), &cluster.directory(),
                        &cluster.transport(), [&cluster] { return cluster.now(); });
  // Single-host pools pin the binding, so we know exactly which shards the
  // two-phase reserve must talk to.
  const std::string host_a = cluster.ip(1);
  const std::string host_b = cluster.ip(2);
  const int owner_b = sharded.shard_map().ShardOf(cluster.directory().Resolve(host_b));
  const int owner_a = sharded.shard_map().ShardOf(cluster.directory().Resolve(host_a));
  ASSERT_NE(owner_a, owner_b);  // Distinct shards, or the abort proves nothing.
  sharded.shard(owner_b).set_unresponsive(true);
  const std::string query = "option static\nA = (" + host_a + ")\nB = (" + host_b +
                            ")\nf1 A -> " + cluster.ip(0) + " size 8M\nf2 B -> " +
                            cluster.ip(0) + " size 8M\n";
  const Result<QueryReply> reply = sharded.Answer(query);
  // The binding is still returned — reservations are best-effort — but the
  // failed prepare aborted every lease of the set: neither host stays held.
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(reply.value().binding.at("A").name, host_a);
  EXPECT_EQ(reply.value().binding.at("B").name, host_b);
  const Seconds now = cluster.now();
  EXPECT_FALSE(sharded.IsReservedAnywhere(host_a, now));
  EXPECT_FALSE(sharded.IsReservedAnywhere(host_b, now));
  for (int s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard(s).reservations().PreparedCount(now), 0);
    EXPECT_EQ(sharded.shard(s).reservations().ActiveCount(now), 0);
  }
}

TEST(ShardedServerTest, UnresponsiveShardStatusFallsBackToAssumeLoaded) {
  // A shard that never answers probes makes its hosts look fully loaded
  // (assume_loaded_on_missing), steering the binding to a responsive shard
  // instead of failing the query.
  Cluster cluster = MakeShardCluster(16, /*seed=*/9, /*hold=*/0);
  cluster.MeasureNow();
  ShardedServer sharded(ShardConfigFor(&cluster, 4), &cluster.directory(),
                        &cluster.transport(), [&cluster] { return cluster.now(); });
  const std::string host_dead = cluster.ip(1);
  const std::string host_live = cluster.ip(2);
  const int owner_dead = sharded.shard_map().ShardOf(cluster.directory().Resolve(host_dead));
  const int owner_live = sharded.shard_map().ShardOf(cluster.directory().Resolve(host_live));
  ASSERT_NE(owner_dead, owner_live);
  sharded.shard(owner_dead).set_unresponsive(true);
  const std::string query = "A = (" + host_dead + " " + host_live + ")\nf1 A -> " +
                            cluster.ip(0) + " size 8M\n";
  const Result<QueryReply> reply = sharded.Answer(query);
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(reply.value().binding.at("A").name, host_live);
  // The dead shard's probes count as timeouts in the merged stats.
  EXPECT_GT(reply.value().probe_stats.timeouts, 0);
}

// ---- Merge determinism: byte-identical to the single server ----

// Everything an answer exposes, rendered bit-faithfully. Probe stats,
// counters, and traces legitimately differ between deployments.
std::string ReplyDigest(const Result<QueryReply>& reply) {
  if (!reply.ok()) {
    return "error: " + reply.error().message;
  }
  std::ostringstream out;
  out << "binding [";
  for (const auto& [var, endpoint] : reply.value().binding) {
    out << var << "=" << endpoint.name << " ";
  }
  out << "] scores [";
  for (const auto& [name, score] : reply.value().scores) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s=%.17g ", name.c_str(), score);
    out << buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", reply.value().estimate.makespan);
  out << "] makespan " << buf;
  return out.str();
}

std::vector<std::filesystem::path> GoodFixtures() {
  std::vector<std::filesystem::path> fixtures;
  const std::filesystem::path root = std::filesystem::path(CLOUDTALK_QUERY_DIR) / "good";
  for (const auto& entry : std::filesystem::directory_iterator(root)) {
    if (entry.path().extension() == ".ct") {
      fixtures.push_back(entry.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  return fixtures;
}

void AddShardLoad(Cluster* cluster) {
  cluster->AddBackgroundPair(cluster->host(2), cluster->host(5), 600 * kMbps);
  cluster->AddBackgroundPair(cluster->host(9), cluster->host(12), 800 * kMbps);
  cluster->MeasureNow();
}

TEST(ShardedServerTest, GoodFixturesAnswerByteIdenticalAcrossShardCounts) {
  const std::vector<std::filesystem::path> fixtures = GoodFixtures();
  ASSERT_FALSE(fixtures.empty()) << "no fixtures under " << CLOUDTALK_QUERY_DIR;
  for (const auto& path : fixtures) {
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    const std::string query = text.str();
    // Oracle: the single server on its own identically seeded cluster.
    Cluster oracle_cluster = MakeShardCluster(16, /*seed=*/21, /*hold=*/0.3);
    AddShardLoad(&oracle_cluster);
    const std::string want = ReplyDigest(oracle_cluster.cloudtalk().Answer(query));
    for (const int shards : {1, 2, 4}) {
      Cluster cluster = MakeShardCluster(16, /*seed=*/21, /*hold=*/0.3);
      AddShardLoad(&cluster);
      ShardedServer sharded(ShardConfigFor(&cluster, shards), &cluster.directory(),
                            &cluster.transport(), [&cluster] { return cluster.now(); });
      EXPECT_EQ(ReplyDigest(sharded.Answer(query)), want)
          << path.filename() << " over " << shards << " shard(s)";
    }
  }
}

TEST(ShardedServerTest, ProbeStatsMatchSingleServerTotals) {
  // Hierarchical aggregation re-partitions the probes but must not change
  // the totals: same requests, same replies, same bytes on the wire.
  const std::string query = "A = (10.0.0.1 10.0.0.2 10.0.0.3 10.0.0.4)\n"
                            "f1 A -> 10.0.0.9 size 32M\n";
  Cluster oracle_cluster = MakeShardCluster(16, /*seed=*/13, /*hold=*/0);
  AddShardLoad(&oracle_cluster);
  const Result<QueryReply> want = oracle_cluster.cloudtalk().Answer(query);
  ASSERT_TRUE(want.ok()) << want.error().ToString();
  Cluster cluster = MakeShardCluster(16, /*seed=*/13, /*hold=*/0);
  AddShardLoad(&cluster);
  ShardedServer sharded(ShardConfigFor(&cluster, 4), &cluster.directory(),
                        &cluster.transport(), [&cluster] { return cluster.now(); });
  const Result<QueryReply> got = sharded.Answer(query);
  ASSERT_TRUE(got.ok()) << got.error().ToString();
  EXPECT_EQ(got.value().probe_stats.requests_sent, want.value().probe_stats.requests_sent);
  EXPECT_EQ(got.value().probe_stats.replies_received,
            want.value().probe_stats.replies_received);
  EXPECT_EQ(got.value().probe_stats.bytes_sent, want.value().probe_stats.bytes_sent);
  EXPECT_EQ(got.value().probe_stats.bytes_received,
            want.value().probe_stats.bytes_received);
  EXPECT_EQ(sharded.total_probe_stats().requests_sent,
            want.value().probe_stats.requests_sent);
}

TEST(ShardedServerTest, RouteAndAggregateSpansAppearInTraces) {
  Cluster cluster = MakeShardCluster(16, /*seed=*/13, /*hold=*/0.3);
  AddShardLoad(&cluster);
  ShardedServer sharded(ShardConfigFor(&cluster, 4), &cluster.directory(),
                        &cluster.transport(), [&cluster] { return cluster.now(); });
  const std::string query = "A = (10.0.0.1 10.0.0.2 10.0.0.5 10.0.0.6)\n"
                            "f1 A -> 10.0.0.9 size 32M\n";
  const Result<QueryReply> reply = sharded.Answer(query);
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  if (reply.value().trace.empty()) {
    GTEST_SKIP() << "observability compiled out";
  }
  bool saw_route = false;
  bool saw_aggregate = false;
  for (const auto& span : reply.value().trace.spans) {
    if (span.name() == "route") {
      saw_route = true;
    }
    if (span.name() == "aggregate") {
      saw_aggregate = true;
    }
  }
  EXPECT_TRUE(saw_route);
  EXPECT_TRUE(saw_aggregate);
}

// ---- N-slot admission gate (src/core/admission.h) ----

lang::ScopeAnalysis ScopeOf(const std::string& text) {
  const Result<lang::Query> query = lang::Parse(text);
  EXPECT_TRUE(query.ok()) << (query.ok() ? "" : query.error().ToString());
  const Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query.value());
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error().ToString());
  return lang::AnalyzeScope(compiled.value());
}

// Regression for the release path: a waiter blocked purely on the slot
// count must be re-checked when ANY slot frees — not just the one its
// notify happened to target. With notify_one, releasing a slot while two
// waiters queue could wake the wrong one and deadlock.
TEST(AdmissionGateTest, WaiterBlockedOnCountWakesWhenAnySlotFrees) {
  AdmissionGate gate(/*slots=*/2);
  const lang::ScopeAnalysis a = ScopeOf("A = (10.0.0.1)\nf1 A -> 10.0.0.9 size 1M\n");
  const lang::ScopeAnalysis b = ScopeOf("B = (10.0.0.2)\nf1 B -> 10.0.0.9 size 1M\n");
  const lang::ScopeAnalysis c = ScopeOf("C = (10.0.0.3)\nf1 C -> 10.0.0.9 size 1M\n");
  const uint64_t ta = gate.Admit(a);
  const uint64_t tb = gate.Admit(b);
  EXPECT_EQ(gate.InFlight(), 2);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    const uint64_t tc = gate.Admit(c);  // Disjoint from both: blocked on count only.
    admitted.store(true);
    gate.Release(tc);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());  // Both slots held: still waiting.
  gate.Release(ta);               // Free ANY one slot...
  waiter.join();                  // ...and the count-blocked waiter proceeds.
  EXPECT_TRUE(admitted.load());
  gate.Release(tb);
  EXPECT_EQ(gate.InFlight(), 0);
}

TEST(AdmissionGateTest, ConflictingWaiterWaitsForTheConflictNotJustASlot) {
  AdmissionGate gate(/*slots=*/2);
  const lang::ScopeAnalysis a = ScopeOf("A = (10.0.0.1)\nf1 A -> 10.0.0.9 size 1M\n");
  const lang::ScopeAnalysis b = ScopeOf("B = (10.0.0.2)\nf1 B -> 10.0.0.9 size 1M\n");
  // Conflicts with `a` (same candidate host, both reserve).
  const lang::ScopeAnalysis c = ScopeOf("C = (10.0.0.1)\nf1 C -> 10.0.0.9 size 1M\n");
  const uint64_t ta = gate.Admit(a);
  const uint64_t tb = gate.Admit(b);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    const uint64_t tc = gate.Admit(c);
    admitted.store(true);
    gate.Release(tc);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  // Releasing the non-conflicting scope frees a slot, but the footprint
  // conflict with `a` still blocks the waiter.
  gate.Release(tb);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  gate.Release(ta);  // The conflicting scope leaves: now it proceeds.
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionGateTest, ReleaseUnknownTicketFiresI409) {
  if (!check::kInvariantsEnabled) {
    GTEST_SKIP() << "built without CLOUDTALK_INVARIANTS";
  }
  const check::OnViolation saved = check::GetViolationPolicy();
  check::SetViolationPolicy(check::OnViolation::kThrow);
  AdmissionGate gate(/*slots=*/2);
  EXPECT_THROW(gate.Release(777), check::InvariantViolation);
  check::SetViolationPolicy(saved);
}

// ---- Concurrent admission stress (runs under TSan in CI) ----

TEST(ShardedServerTest, SixteenConcurrentDisjointQueriesAllComplete) {
  Cluster cluster = MakeShardCluster(32, /*seed=*/17, /*hold=*/60.0, /*slots=*/8);
  cluster.MeasureNow();
  ShardedServer sharded(ShardConfigFor(&cluster, 4), &cluster.directory(),
                        &cluster.transport(), [&cluster] { return cluster.now(); });
  std::vector<std::thread> threads;
  std::vector<std::string> picks(16);
  // Not vector<bool>: per-thread writes must land on distinct bytes.
  std::vector<char> ok(16, 0);
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&cluster, &sharded, &picks, &ok, t] {
      // Each query draws from its own two-host slice: all disjoint, so up
      // to 8 evaluate concurrently through the N-slot gate.
      const std::string query = "option static\nA = (" + cluster.ip(2 * t) + " " +
                                cluster.ip(2 * t + 1) + ")\nf1 A -> disk size 1M\n";
      const Result<QueryReply> reply = sharded.Answer(query);
      ok[t] = reply.ok();
      if (reply.ok()) {
        picks[t] = reply.value().binding.at("A").name;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const Seconds now = cluster.now();
  for (int t = 0; t < 16; ++t) {
    EXPECT_TRUE(ok[t]) << "query " << t;
    ASSERT_FALSE(picks[t].empty());
    // Every pick committed its reservation on exactly one shard (I410).
    int holders = 0;
    for (int s = 0; s < sharded.num_shards(); ++s) {
      holders += sharded.shard(s).reservations().IsReserved(picks[t], now) ? 1 : 0;
    }
    EXPECT_EQ(holders, 1) << picks[t];
  }
  // Disjoint slices: sixteen distinct hosts were reserved.
  EXPECT_EQ(std::set<std::string>(picks.begin(), picks.end()).size(), 16u);
}

}  // namespace
}  // namespace cloudtalk
