// Tests for the mini-MapReduce substrate.
#include <gtest/gtest.h>

#include <vector>

#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/hdfs/mini_hdfs.h"
#include "src/mapred/mini_mapreduce.h"

namespace cloudtalk {
namespace {

// Installs an input file with `blocks` splits of `block` bytes, replicas
// spread round-robin.
void InstallInput(Cluster& cluster, MiniHdfs& hdfs, const std::string& name, int blocks,
                  Bytes block) {
  std::vector<std::vector<NodeId>> replicas(blocks);
  const int n = cluster.num_hosts();
  for (int b = 0; b < blocks; ++b) {
    for (int r = 0; r < 3; ++r) {
      replicas[b].push_back(cluster.host((b + r) % n));
    }
  }
  hdfs.InstallFile(name, static_cast<Bytes>(blocks) * block, std::move(replicas));
}

TEST(MiniMapReduceTest, SortJobCompletes) {
  Cluster cluster(LocalGigabitCluster(8));
  cluster.StartStatusSweep();
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  InstallInput(cluster, hdfs, "input", 8, 64 * kMB);
  MapRedOptions options;
  MiniMapReduce mr(&cluster, &hdfs, options);
  JobStats stats;
  bool done = false;
  ASSERT_TRUE(mr.RunJob("input", 4, [&](const JobStats& s) {
    stats = s;
    done = true;
  }));
  cluster.sim().RunUntil(600);
  ASSERT_TRUE(done);
  EXPECT_EQ(stats.maps_total, 8);
  EXPECT_EQ(stats.shuffle_durations.size(), 4u);
  EXPECT_GT(stats.finished, stats.started);
  EXPECT_GE(stats.synced, stats.finished);
}

TEST(MiniMapReduceTest, RejectsBadInputs) {
  Cluster cluster(LocalGigabitCluster(4));
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  MiniMapReduce mr(&cluster, &hdfs, MapRedOptions{});
  EXPECT_FALSE(mr.RunJob("missing", 4, nullptr));
  InstallInput(cluster, hdfs, "input", 2, 64 * kMB);
  EXPECT_FALSE(mr.RunJob("input", 0, nullptr));
  ASSERT_TRUE(mr.RunJob("input", 2, nullptr));
  EXPECT_FALSE(mr.RunJob("input", 2, nullptr));  // One job at a time.
}

TEST(MiniMapReduceTest, DataLocalityPreferred) {
  Cluster cluster(LocalGigabitCluster(8));
  cluster.StartStatusSweep();
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  // Every host holds a replica of some split: all maps can run local.
  InstallInput(cluster, hdfs, "input", 8, 64 * kMB);
  MapRedOptions options;
  options.write_output = false;
  MiniMapReduce mr(&cluster, &hdfs, options);
  JobStats stats;
  bool done = false;
  ASSERT_TRUE(mr.RunJob("input", 2, [&](const JobStats& s) {
    stats = s;
    done = true;
  }));
  cluster.sim().RunUntil(600);
  ASSERT_TRUE(done);
  // Locality is best-effort: with randomized heartbeat phases a tracker can
  // arrive after its local splits were taken. Most maps must still be local.
  EXPECT_LE(stats.non_local_maps, stats.maps_total / 4);
}

TEST(MiniMapReduceTest, CloudTalkReducePlacementAvoidsBlastedNodes) {
  // UDP-blasted receivers should not get reduce tasks under CloudTalk.
  ClusterOptions copts;
  copts.seed = 3;
  Cluster cluster(LocalGigabitCluster(10), copts);
  cluster.StartStatusSweep();
  // Hosts 6..9 receive iperf UDP at line rate (from outside the job's
  // perspective: sources are hosts 1..4, whose uplinks get busy too).
  for (int i = 0; i < 4; ++i) {
    cluster.AddBackgroundPair(cluster.host(1 + i), cluster.host(6 + i), 950 * kMbps);
  }
  cluster.RunUntil(0.25);
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  InstallInput(cluster, hdfs, "input", 10, 64 * kMB);
  MapRedOptions options;
  options.cloudtalk_reduce = true;
  options.write_output = false;
  MiniMapReduce mr(&cluster, &hdfs, options);
  bool done = false;
  JobStats stats;
  ASSERT_TRUE(mr.RunJob("input", 3, [&](const JobStats& s) {
    stats = s;
    done = true;
  }));
  cluster.sim().RunUntil(900);
  ASSERT_TRUE(done);
  EXPECT_EQ(stats.shuffle_durations.size(), 3u);
}

TEST(MiniMapReduceTest, MoreReducersThanNodesStillFinishes) {
  Cluster cluster(LocalGigabitCluster(4));
  cluster.StartStatusSweep();
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  InstallInput(cluster, hdfs, "input", 4, 32 * kMB);
  MapRedOptions options;
  options.reduce_slots = 4;
  options.write_output = false;
  MiniMapReduce mr(&cluster, &hdfs, options);
  bool done = false;
  ASSERT_TRUE(mr.RunJob("input", 10, [&](const JobStats&) { done = true; }));
  cluster.sim().RunUntil(900);
  EXPECT_TRUE(done);
}

TEST(MiniMapReduceTest, SpeculationRescuesStragglers) {
  // One node's disk is pathologically slow; with speculation the job still
  // finishes in bounded time and records a speculative launch.
  Topology topo = LocalGigabitCluster(6);
  topo.mutable_host_caps(topo.hosts()[5]).disk_write = 10 * kMbps;
  topo.mutable_host_caps(topo.hosts()[5]).disk_read = 10 * kMbps;
  Cluster cluster(std::move(topo));
  cluster.StartStatusSweep();
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  // Keep replicas off the slow node so maps are fast; reduces may still
  // land there.
  std::vector<std::vector<NodeId>> replicas;
  for (int b = 0; b < 5; ++b) {
    replicas.push_back({cluster.host(b % 5), cluster.host((b + 1) % 5),
                        cluster.host((b + 2) % 5)});
  }
  hdfs.InstallFile("input", 5 * 64 * kMB, std::move(replicas));
  MapRedOptions options;
  options.write_output = false;
  options.speculative_reduces = true;
  MiniMapReduce mr(&cluster, &hdfs, options);
  bool done = false;
  ASSERT_TRUE(mr.RunJob("input", 5, [&](const JobStats&) { done = true; }));
  cluster.sim().RunUntil(1800);
  EXPECT_TRUE(done);
}

TEST(MiniMapReduceTest, OutputWritesLandInHdfs) {
  Cluster cluster(LocalGigabitCluster(6));
  cluster.StartStatusSweep();
  MiniHdfs hdfs(&cluster, HdfsOptions{});
  InstallInput(cluster, hdfs, "input", 4, 32 * kMB);
  MapRedOptions options;
  options.write_output = true;
  MiniMapReduce mr(&cluster, &hdfs, options);
  bool done = false;
  ASSERT_TRUE(mr.RunJob("input", 2, [&](const JobStats&) { done = true; }));
  cluster.sim().RunUntil(900);
  ASSERT_TRUE(done);
  EXPECT_NE(hdfs.GetFile("_job1_out0"), nullptr);
  EXPECT_NE(hdfs.GetFile("_job1_out1"), nullptr);
}

}  // namespace
}  // namespace cloudtalk
