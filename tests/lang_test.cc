// Tests for the CloudTalk language: lexer, parser, printer, analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "src/lang/analysis.h"
#include "src/lang/ast.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"

namespace cloudtalk {
namespace lang {
namespace {

// ---- Lexer ----

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("A = (1.2.3.4 disk) ; f A -> 1.2.3.5 size 256M");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = tokens.value();
  EXPECT_EQ(t[0].kind, TokenKind::kIdent);
  EXPECT_EQ(t[0].text, "A");
  EXPECT_EQ(t[1].kind, TokenKind::kEquals);
  EXPECT_EQ(t[2].kind, TokenKind::kLParen);
  EXPECT_EQ(t[3].kind, TokenKind::kAddress);
  EXPECT_EQ(t[3].text, "1.2.3.4");
  EXPECT_EQ(t[4].text, "disk");
  EXPECT_EQ(t[5].kind, TokenKind::kRParen);
  EXPECT_EQ(t[6].kind, TokenKind::kSeparator);
}

TEST(LexerTest, NumberSuffixes) {
  auto tokens = Tokenize("1K 2M 3G 10KB 1.5M 42");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = tokens.value();
  EXPECT_DOUBLE_EQ(t[0].number, 1024.0);
  EXPECT_DOUBLE_EQ(t[1].number, 2 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(t[2].number, 3 * 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(t[3].number, 10 * 1024.0);
  EXPECT_DOUBLE_EQ(t[4].number, 1.5 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(t[5].number, 42.0);
}

TEST(LexerTest, ArrowForms) {
  auto tokens = Tokenize("a -> b > c - d");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = tokens.value();
  EXPECT_EQ(t[1].kind, TokenKind::kArrow);
  EXPECT_EQ(t[3].kind, TokenKind::kArrow);
  EXPECT_EQ(t[5].kind, TokenKind::kMinus);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a # this is a comment\nb");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = tokens.value();
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].kind, TokenKind::kSeparator);
  EXPECT_EQ(t[2].text, "b");
}

TEST(LexerTest, NewlinesCollapse) {
  auto tokens = Tokenize("a\n\n\n;;b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value().size(), 4u);  // a, separator, b, eof.
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = Tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = tokens.value();
  EXPECT_EQ(t[2].line, 2);
  EXPECT_EQ(t[2].column, 3);
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}


TEST(LexerTest, SuffixAtEndOfInput) {
  auto tokens = Tokenize("1K");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ(tokens.value()[0].number, 1024.0);
}

TEST(LexerTest, PlainDecimal) {
  auto tokens = Tokenize("1.5 0.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ(tokens.value()[0].number, 1.5);
  EXPECT_DOUBLE_EQ(tokens.value()[1].number, 0.25);
}

TEST(LexerTest, TwoDotNumberRejected) {
  EXPECT_FALSE(Tokenize("1.2.3").ok());  // Neither number nor address.
}

TEST(LexerTest, EmptyAndCommentOnlyInputs) {
  auto empty = Tokenize("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().back().kind, TokenKind::kEof);
  auto comment = Tokenize("# nothing here\n");
  ASSERT_TRUE(comment.ok());
  EXPECT_EQ(comment.value().back().kind, TokenKind::kEof);
}

TEST(ParserTest, EmptyQueryIsValid) {
  auto query = Parse("");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query.value().flows.empty());
}

TEST(AstTest, EndpointToString) {
  EXPECT_EQ(Endpoint::Address("10.1.2.3").ToString(), "10.1.2.3");
  EXPECT_EQ(Endpoint::Variable("X").ToString(), "X");
  EXPECT_EQ(Endpoint::Disk().ToString(), "disk");
  EXPECT_EQ(Endpoint::Unknown().ToString(), "0.0.0.0");
}

TEST(AstTest, ExprCloneIsDeep) {
  auto query = Parse("f1 a -> b size (1M + 2M) * 3\n");
  ASSERT_TRUE(query.ok());
  const Expr* size = query.value().flows[0].FindAttr(Attr::kSize);
  ASSERT_NE(size, nullptr);
  ExprPtr clone = size->Clone();
  EXPECT_EQ(clone->ToString(), size->ToString());
  EXPECT_NE(clone.get(), size);
  EXPECT_NE(clone->lhs.get(), size->lhs.get());
}

// ---- Parser: the paper's own queries ----

// Figure 2: replica selection.
TEST(ParserTest, Figure2ReplicaQuery) {
  auto query = Parse(
      "A = (vm2 vm3)\n"
      "f1 A -> vm1 size 256M\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  const Query& q = query.value();
  ASSERT_EQ(q.variables.size(), 1u);
  EXPECT_EQ(q.variables[0].names, std::vector<std::string>{"A"});
  ASSERT_EQ(q.variables[0].values.size(), 2u);
  ASSERT_EQ(q.flows.size(), 1u);
  EXPECT_EQ(q.flows[0].name, "f1");
  EXPECT_EQ(q.flows[0].src.kind, Endpoint::Kind::kVariable);
  EXPECT_EQ(q.flows[0].dst.kind, Endpoint::Kind::kAddress);
  const Expr* size = q.flows[0].FindAttr(Attr::kSize);
  ASSERT_NE(size, nullptr);
  EXPECT_DOUBLE_EQ(size->literal, 256 * 1024.0 * 1024.0);
}

// Section 4.1: HDFS read with disk dependency.
TEST(ParserTest, DiskReadChain) {
  auto query = Parse(
      "A = (vm1 vm2 vm3)\n"
      "f1 disk -> A size 100M rate r(f2)\n"
      "f2 A -> vm1 size sz(f1) rate r(f1)\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  const Query& q = query.value();
  ASSERT_EQ(q.flows.size(), 2u);
  EXPECT_EQ(q.flows[0].src.kind, Endpoint::Kind::kDisk);
  const Expr* rate = q.flows[0].FindAttr(Attr::kRate);
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->kind, Expr::Kind::kRef);
  EXPECT_EQ(rate->ref_attr, Attr::kRate);
  EXPECT_EQ(rate->ref_flow, "f2");
}

// Section 5.3: the full HDFS write pipeline query.
TEST(ParserTest, HdfsWritePipeline) {
  auto query = Parse(
      "r1 = r2 = r3 = (dn1 dn2 dn3 dn4 dn5)\n"
      "f1 client -> r1 size 256M rate r(f2)\n"
      "f2 r1 -> disk size 256M rate r(f1)\n"
      "f3 r1 -> r2 size 256M rate r(f4) transfer t(f2)\n"
      "f4 r2 -> disk size 256M rate r(f3)\n"
      "f5 r2 -> r3 size 256M rate r(f6) transfer t(f4)\n"
      "f6 r3 -> disk size 256M rate r(f5)\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  const Query& q = query.value();
  ASSERT_EQ(q.variables.size(), 1u);
  EXPECT_EQ(q.variables[0].names.size(), 3u);
  EXPECT_EQ(q.flows.size(), 6u);
  EXPECT_EQ(q.flows[2].dst.kind, Endpoint::Kind::kVariable);
  EXPECT_EQ(q.flows[2].dst.name, "r2");
}

// Section 5.3: reduce placement with unknown sources.
TEST(ParserTest, UnknownSourceReduceQuery) {
  auto query = Parse(
      "x1 = x2 = (node1 node2 node3)\n"
      "f1 0.0.0.0 -> x1 size 1G rate r(f2)\n"
      "f2 x1 -> disk size 1G rate r(f1)\n"
      "f3 0.0.0.0 -> x2 size 1G rate r(f4)\n"
      "f4 x2 -> disk size 1G rate r(f3)\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  EXPECT_EQ(query.value().flows[0].src.kind, Endpoint::Kind::kUnknown);
}

// Section 5.4: web-search aggregator placement (unnamed flows, '>' arrow,
// flows without explicit size).
TEST(ParserTest, WebSearchQuery) {
  auto query = Parse(
      "AGG1 = AGG2 = (svr1 svr2 svr3)\n"
      "f1a svr1 -> AGG1 size 10KB\n"
      "f1b AGG1 -> frontend transfer t(f1a)\n"
      "f51a svr51 > AGG2 size 10KB\n"
      "f51b AGG2 -> frontend transfer t(f51a)\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  const Query& q = query.value();
  EXPECT_EQ(q.flows.size(), 4u);
}

TEST(ParserTest, UnnamedFlowsGetStableNames) {
  auto query = Parse("a -> b size 1M\nc -> d size 2M");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().flows[0].name, "_f1");
  EXPECT_EQ(query.value().flows[1].name, "_f2");
  EXPECT_FALSE(query.value().flows[0].explicit_name);
}

TEST(ParserTest, Options) {
  auto query = Parse("option packet\noption static\noption allow_same\na -> b size 1M");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query.value().options.use_packet_simulator);
  EXPECT_FALSE(query.value().options.use_dynamic_load);
  EXPECT_TRUE(query.value().options.allow_same_binding);
  EXPECT_EQ(query.value().options.eval_threads, 0);  // Unset: server default.
}

TEST(ParserTest, OptionThreads) {
  auto query = Parse("option threads 4\na -> b size 1M");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  EXPECT_EQ(query.value().options.eval_threads, 4);
}

TEST(ParserTest, OptionThreadsErrors) {
  EXPECT_FALSE(Parse("option threads\na -> b size 1M").ok());       // Missing count.
  EXPECT_FALSE(Parse("option threads 0\na -> b size 1M").ok());     // Not positive.
  EXPECT_FALSE(Parse("option threads 1.5\na -> b size 1M").ok());   // Not integral.
  EXPECT_FALSE(Parse("option threads 4096\na -> b size 1M").ok());  // Above cap.
}

TEST(PrinterTest, RoundTripOptionThreads) {
  auto query = Parse("option threads 8\nf1 a -> b size 1M\n");
  ASSERT_TRUE(query.ok());
  const std::string printed = query.value().ToString();
  EXPECT_NE(printed.find("option threads 8"), std::string::npos) << printed;
  auto reparsed = Parse(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(reparsed.value().options.eval_threads, 8);
}

TEST(ParserTest, ExpressionArithmetic) {
  auto query = Parse("f a -> b size (2M + 1M) * 2\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  EXPECT_DOUBLE_EQ(compiled.value().flows()[0].size, 6 * 1024.0 * 1024.0);
}

// ---- Parser error cases ----

TEST(ParserTest, RejectsEmptyPool) {
  EXPECT_FALSE(Parse("A = ()\n").ok());
}

TEST(ParserTest, RejectsDuplicateVariable) {
  EXPECT_FALSE(Parse("A = (x)\nA = (y)\n").ok());
}

TEST(ParserTest, RejectsDuplicateFlowName) {
  EXPECT_FALSE(Parse("f1 a -> b size 1M\nf1 c -> d size 1M\n").ok());
}

TEST(ParserTest, RejectsUndefinedFlowReference) {
  EXPECT_FALSE(Parse("f1 a -> b size sz(nope)\n").ok());
}

TEST(ParserTest, RejectsDiskToDisk) {
  EXPECT_FALSE(Parse("disk -> disk size 1M\n").ok());
}

TEST(ParserTest, RejectsDuplicateAttribute) {
  EXPECT_FALSE(Parse("a -> b size 1M size 2M\n").ok());
}

TEST(ParserTest, RejectsUnknownAttribute) {
  EXPECT_FALSE(Parse("a -> b bogus 1M\n").ok());
}

TEST(ParserTest, RejectsUnknownOption) {
  EXPECT_FALSE(Parse("option bogus\n").ok());
}

TEST(ParserTest, ErrorCarriesPosition) {
  auto query = Parse("a -> b size 1M\nc -> ");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.error().line, 2);
}

// ---- Printer round-trip ----

TEST(PrinterTest, RoundTrip) {
  const std::string text =
      "r1 = r2 = (dn1 dn2 dn3)\n"
      "f1 client -> r1 size 256M rate r(f2)\n"
      "f2 r1 -> disk size 256M rate r(f1)\n";
  auto query = Parse(text);
  ASSERT_TRUE(query.ok());
  const std::string printed = query.value().ToString();
  auto reparsed = Parse(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().ToString() << "\n" << printed;
  EXPECT_EQ(reparsed.value().ToString(), printed);
}

TEST(PrinterTest, RoundTripWithExpressions) {
  const std::string text = "f1 a -> b size 1M\nf2 b -> c size sz(f1) * 2 transfer t(f1)\n";
  auto query = Parse(text);
  ASSERT_TRUE(query.ok());
  auto reparsed = Parse(query.value().ToString());
  ASSERT_TRUE(reparsed.ok()) << query.value().ToString();
  EXPECT_EQ(reparsed.value().ToString(), query.value().ToString());
}

// ---- Analysis ----

TEST(AnalysisTest, ChainGroupingHdfsWrite) {
  auto query = Parse(
      "r1 = r2 = r3 = (dn1 dn2 dn3 dn4)\n"
      "f1 client -> r1 size 256M rate r(f2)\n"
      "f2 r1 -> disk size 256M rate r(f1)\n"
      "f3 r1 -> r2 size 256M rate r(f4) transfer t(f2)\n"
      "f4 r2 -> disk size 256M rate r(f3)\n"
      "f5 r2 -> r3 size 256M rate r(f6) transfer t(f4)\n"
      "f6 r3 -> disk size 256M rate r(f5)\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok()) << compiled.error().ToString();
  // All six flows are transitively coupled into one chain group.
  ASSERT_EQ(compiled.value().groups().size(), 1u);
  EXPECT_EQ(compiled.value().groups()[0].flow_indices.size(), 6u);
}

TEST(AnalysisTest, IndependentFlowsSeparateGroups) {
  auto query = Parse("f1 a -> b size 1M\nf2 c -> d size 1M\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value().groups().size(), 2u);
}

TEST(AnalysisTest, VariableCommunicationSets) {
  auto query = Parse(
      "X = Y = Z = (a b c)\n"
      "f1 X -> Y size 100M\n"
      "f2 Z -> a size 100M\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  const CompiledQuery& cq = compiled.value();
  const VarComm& x = cq.variables()[cq.VariableIndex("X")];
  const VarComm& y = cq.variables()[cq.VariableIndex("Y")];
  const VarComm& z = cq.variables()[cq.VariableIndex("Z")];
  ASSERT_EQ(x.tx_to.size(), 1u);
  EXPECT_EQ(x.tx_to[0], Endpoint::Variable("Y"));
  EXPECT_TRUE(x.rx_from.empty());
  ASSERT_EQ(y.rx_from.size(), 1u);
  EXPECT_EQ(y.rx_from[0], Endpoint::Variable("X"));
  ASSERT_EQ(z.tx_to.size(), 1u);
  EXPECT_EQ(z.tx_to[0], Endpoint::Address("a"));
}

TEST(AnalysisTest, DiskFlagsSet) {
  auto query = Parse(
      "A = (x y)\n"
      "f1 disk -> A size 1M\n"
      "f2 A -> disk size 1M\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  const VarComm& a = compiled.value().variables()[0];
  EXPECT_TRUE(a.reads_disk);
  EXPECT_TRUE(a.writes_disk);
  EXPECT_TRUE(a.tx_to.empty());
  EXPECT_TRUE(a.rx_from.empty());
}

TEST(AnalysisTest, TransferInheritsSize) {
  auto query = Parse(
      "f1 a -> b size 10KB\n"
      "f2 b -> c transfer t(f1)\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok()) << compiled.error().ToString();
  EXPECT_DOUBLE_EQ(compiled.value().flows()[1].size, 10 * 1024.0);
}

TEST(AnalysisTest, RateLimitConvertsBytesToBits) {
  auto query = Parse("f1 a -> b size 1M rate 1K\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  // 1 KiB/s = 8192 bits/s.
  EXPECT_DOUBLE_EQ(compiled.value().groups()[0].rate_limit, 8192.0);
}

TEST(AnalysisTest, CyclicSizeReferenceRejected) {
  auto query = Parse(
      "f1 a -> b size sz(f2)\n"
      "f2 b -> c size sz(f1)\n");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(CompiledQuery::Compile(query.value()).ok());
}

TEST(AnalysisTest, MissingSizeRejected) {
  auto query = Parse("f1 a -> b rate 1M\n");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(CompiledQuery::Compile(query.value()).ok());
}

TEST(AnalysisTest, StartTimesPropagate) {
  auto query = Parse("f1 a -> b size 1M start 2\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  EXPECT_DOUBLE_EQ(compiled.value().flows()[0].start, 2.0);
  EXPECT_DOUBLE_EQ(compiled.value().groups()[0].start, 2.0);
}



TEST(AnalysisTest, EndAttributeBecomesGroupDeadline) {
  auto query = Parse("f1 a -> b size 1M end 5\nf2 c -> d size 1M\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  const int g1 = compiled.value().flows()[0].group;
  const int g2 = compiled.value().flows()[1].group;
  EXPECT_DOUBLE_EQ(compiled.value().groups()[g1].deadline, 5.0);
  EXPECT_TRUE(std::isinf(compiled.value().groups()[g2].deadline));
}

// ---- Section 7 extension: scalar requirements ----

TEST(ParserTest, RequirementsParsed) {
  auto query = Parse(
      "X = (a b)\n"
      "X requires cpu 4 mem 8G\n"
      "f1 X -> a size 1M\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  ASSERT_EQ(query.value().requirements.size(), 1u);
  EXPECT_EQ(query.value().requirements[0].var, "X");
  EXPECT_DOUBLE_EQ(query.value().requirements[0].cpu_cores, 4.0);
  EXPECT_DOUBLE_EQ(query.value().requirements[0].memory, 8.0 * 1024 * 1024 * 1024);
}

TEST(ParserTest, RequirementCpuOnly) {
  auto query = Parse("X = (a)\nX requires cpu 2\nf1 X -> a size 1M\n");
  ASSERT_TRUE(query.ok());
  EXPECT_DOUBLE_EQ(query.value().requirements[0].cpu_cores, 2.0);
  EXPECT_DOUBLE_EQ(query.value().requirements[0].memory, 0.0);
}

TEST(ParserTest, RequirementErrors) {
  EXPECT_FALSE(Parse("X requires cpu 2\n").ok());            // Undeclared.
  EXPECT_FALSE(Parse("X = (a)\nX requires\n").ok());          // Empty.
  EXPECT_FALSE(Parse("X = (a)\nX requires cpu\n").ok());      // Missing number.
  EXPECT_FALSE(
      Parse("X = (a)\nX requires cpu 1\nX requires mem 1G\n").ok());  // Duplicate.
}

TEST(PrinterTest, RoundTripWithRequirementsAndOptions) {
  const std::string text =
      "option allow_same\n"
      "X = (a b)\n"
      "X requires cpu 4 mem 8G\n"
      "f1 X -> a size 1M\n";
  auto query = Parse(text);
  ASSERT_TRUE(query.ok());
  auto reparsed = Parse(query.value().ToString());
  ASSERT_TRUE(reparsed.ok()) << query.value().ToString();
  EXPECT_EQ(reparsed.value().ToString(), query.value().ToString());
  EXPECT_TRUE(reparsed.value().options.allow_same_binding);
  ASSERT_EQ(reparsed.value().requirements.size(), 1u);
}

TEST(AnalysisTest, RequirementsReachVarComm) {
  auto query = Parse("X = (a b)\nX requires cpu 4 mem 2G\nf1 X -> a size 1M\n");
  ASSERT_TRUE(query.ok());
  auto compiled = CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  const VarComm& x = compiled.value().variables()[0];
  EXPECT_DOUBLE_EQ(x.cpu_required, 4.0);
  EXPECT_DOUBLE_EQ(x.mem_required, 2.0 * 1024 * 1024 * 1024);
}

}  // namespace
}  // namespace lang
}  // namespace cloudtalk
