// Tests for the static query-optimisation passes (src/lang/opt.h).
//
// Two layers: per-pass unit tests that pin down what each O-code may and
// may not claim, and the differential sweep that enforces the framework's
// core contract — for every fixture under examples/queries/{good,opt} and
// for both idle and heterogeneous status, exhaustive search with the plan
// applied returns the byte-identical winning binding and bit-exact
// estimate of the unoptimised walk, serial and threaded.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/lang/opt.h"
#include "src/lang/parser.h"

namespace cloudtalk {
namespace {

using lang::CompiledQuery;
using lang::Endpoint;
using lang::InterchangeableClasses;
using lang::OptimizeParams;
using lang::Parse;
using lang::PrunedSpace;
using lang::Query;
using lang::SatisfiesRequirements;
using lang::VarComm;

Query MustParse(const std::string& text) {
  auto query = Parse(text);
  EXPECT_TRUE(query.ok()) << (query.ok() ? "" : query.error().ToString());
  return std::move(query).value();
}

CompiledQuery MustCompile(const Query& query) {
  auto compiled = CompiledQuery::Compile(query);
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error().ToString());
  return std::move(compiled).value();
}

StatusReport MakeReport(Bps cap, Bps tx_use, Bps rx_use) {
  StatusReport r;
  r.nic_tx_cap = cap;
  r.nic_tx_use = tx_use;
  r.nic_rx_cap = cap;
  r.nic_rx_use = rx_use;
  r.disk_read_cap = 4e9;
  r.disk_write_cap = 4e9;
  return r;
}

// Every address mentioned by the query gets a report; `heterogeneous`
// derives a per-address load from the name so hosts differ deterministically
// (distinct winners, not an all-ties landscape).
StatusByAddress SynthesizeStatus(const CompiledQuery& compiled, bool heterogeneous) {
  StatusByAddress status;
  auto add = [&](const Endpoint& e) {
    if (e.kind != Endpoint::Kind::kAddress || status.count(e.name) > 0) {
      return;
    }
    size_t h = 0;
    for (char c : e.name) {
      h = h * 131 + static_cast<unsigned char>(c);
    }
    const double load = heterogeneous ? 50e6 * static_cast<double>(h % 16) : 0;
    status[e.name] = MakeReport(1e9, load, load / 2);
  };
  for (const VarComm& var : compiled.variables()) {
    for (const Endpoint& e : var.pool) {
      add(e);
    }
  }
  for (const lang::CompiledFlow& flow : compiled.flows()) {
    add(flow.src);
    add(flow.dst);
  }
  return status;
}

// ---- Shared analyses ----

TEST(OptAnalysisTest, SatisfiesRequirementsTreatsMissingInfoAsPass) {
  VarComm var;
  var.cpu_required = 4;
  var.mem_required = 8LL << 30;
  StatusReport no_info;  // No cpu/mem totals reported.
  EXPECT_TRUE(SatisfiesRequirements(var, no_info));

  StatusReport rich;
  rich.cpu_cores_total = 8;
  rich.cpu_cores_used = 2;
  rich.mem_total = 16LL << 30;
  rich.mem_used = 4LL << 30;
  EXPECT_TRUE(SatisfiesRequirements(var, rich));

  rich.cpu_cores_used = 6;  // 2 free < 4 required.
  EXPECT_FALSE(SatisfiesRequirements(var, rich));
  rich.cpu_cores_used = 2;
  rich.mem_used = 10LL << 30;  // 6G free < 8G required.
  EXPECT_FALSE(SatisfiesRequirements(var, rich));

  VarComm unconstrained;  // requires nothing: always passes.
  rich.cpu_cores_used = 8;
  rich.mem_used = rich.mem_total;
  EXPECT_TRUE(SatisfiesRequirements(unconstrained, rich));
}

TEST(OptAnalysisTest, DeadFlowIndicesFindsZeroSizeFlows) {
  const Query query = MustParse(
      "A = (v1 v2)\n"
      "f1 A -> sink size 32M\n"
      "f2 A -> sink size 0\n"
      "f3 sink -> A size 0\n");
  const CompiledQuery compiled = MustCompile(query);
  EXPECT_EQ(lang::DeadFlowIndices(compiled), (std::vector<int32_t>{1, 2}));
}

TEST(OptAnalysisTest, InterchangeableClassesRequiresFullSymmetry) {
  // A and B receive identical shards of one chain group: symmetric.
  const Query sym = MustParse(
      "A = B = (v1 v2 v3)\n"
      "f1 src -> A size 1M rate 5M\n"
      "f2 src -> B size 1M rate r(f1)\n");
  const auto classes = InterchangeableClasses(MustCompile(sym));
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], (std::vector<int32_t>{0, 1}));

  // Different sizes break the symmetry.
  const Query asym = MustParse(
      "A = B = (v1 v2 v3)\n"
      "f1 src -> A size 1M rate 5M\n"
      "f2 src -> B size 2M rate r(f1)\n");
  EXPECT_TRUE(InterchangeableClasses(MustCompile(asym)).empty());

  // Different pools break it too.
  const Query pools = MustParse(
      "A = (v1 v2)\nB = (v1 v3)\n"
      "f1 src -> A size 1M rate 5M\n"
      "f2 src -> B size 1M rate r(f1)\n");
  EXPECT_TRUE(InterchangeableClasses(MustCompile(pools)).empty());

  // Same (src, dst, size) but different start times: not symmetric.
  const Query starts = MustParse(
      "A = B = (v1 v2 v3)\n"
      "f1 src -> A size 1M rate 5M\n"
      "f2 src -> B size 1M start 2 rate r(f1)\n");
  EXPECT_TRUE(InterchangeableClasses(MustCompile(starts)).empty());
}

// ---- Individual passes ----

TEST(OptPassTest, RegistryIsStableAndOrdered) {
  const auto& passes = lang::OptPasses();
  ASSERT_EQ(passes.size(), 5u);
  uint32_t all = 0;
  for (size_t i = 1; i < passes.size(); ++i) {
    EXPECT_LT(std::string(passes[i - 1].code), passes[i].code);
  }
  for (const auto& pass : passes) {
    EXPECT_EQ(all & pass.bit, 0u) << pass.code;  // Bits are unique.
    all |= pass.bit;
  }
  EXPECT_EQ(all, lang::kOptAllPasses);
}

TEST(OptPassTest, DomainPruningDropsRequirementViolators) {
  const Query query = MustParse(
      "A = (v1 v2 v3)\n"
      "A requires cpu 4\n"
      "f1 A -> sink size 32M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status = SynthesizeStatus(compiled, /*heterogeneous=*/false);
  status["v2"].cpu_cores_total = 8;
  status["v2"].cpu_cores_used = 6;  // Only 2 free: pruned.
  status["v3"].cpu_cores_total = 8;
  status["v3"].cpu_cores_used = 1;  // 7 free: kept.
  // v1 reports no cpu info: kept (the engine cannot rule it out either).
  const PrunedSpace plan = lang::Optimize(compiled, status);
  EXPECT_FALSE(plan.infeasible);
  ASSERT_EQ(plan.kept.size(), 1u);
  EXPECT_EQ(plan.kept[0], (std::vector<int32_t>{0, 2}));
}

TEST(OptPassTest, DomainPruningDetectsPigeonholeInfeasibility) {
  // Three distinct variables over a two-address pool: no legal binding.
  const Query query = MustParse(
      "A = B = C = (v1 v2)\n"
      "f1 A -> B size 1M\nf2 B -> C size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, false);
  const PrunedSpace plan = lang::Optimize(compiled, status);
  EXPECT_TRUE(plan.infeasible);
  EXPECT_FALSE(plan.infeasible_reason.empty());
  EXPECT_EQ(plan.space_after, 0);

  // With `option allow_same` the pigeonhole does not apply.
  OptimizeParams params;
  params.distinct = false;
  EXPECT_FALSE(lang::Optimize(compiled, status, params).infeasible);
}

TEST(OptPassTest, InterchangeablePassChainsOrbitsAscending) {
  const Query query = MustParse(
      "A = B = C = (v1 v2 v3 v4)\n"
      "f1 src -> A size 1M rate 5M\n"
      "f2 src -> B size 1M rate r(f1)\n"
      "f3 src -> C size 1M rate r(f1)\n");
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, false);
  const PrunedSpace plan = lang::Optimize(compiled, status);
  ASSERT_EQ(plan.orbit_prev.size(), 3u);
  EXPECT_EQ(plan.orbit_prev[0], -1);
  EXPECT_EQ(plan.orbit_prev[1], 0);
  EXPECT_EQ(plan.orbit_prev[2], 1);
  // Orbit reductions are dynamic (engine orbit_skips), not part of the
  // static space accounting.
  EXPECT_EQ(plan.space_after, plan.space_before);
}

TEST(OptPassTest, ComponentSplitCountsAndPinsInertVariables) {
  const Query query = MustParse(
      "A = B = (v1 v2 v3)\n"
      "C = (v4 v5)\n"
      "D = (v6 v7)\n"
      "f1 A -> B size 1M\n"
      "f2 C -> sink size 2M\n");
  // D appears in no flow: inert, pinned to its first legal candidate. A/B
  // and C communicate in disjoint components.
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, false);
  const PrunedSpace plan = lang::Optimize(compiled, status);
  EXPECT_EQ(plan.components, 2);
  ASSERT_EQ(plan.pinned.size(), 4u);
  EXPECT_EQ(plan.pinned[0], -1);
  EXPECT_EQ(plan.pinned[1], -1);
  EXPECT_EQ(plan.pinned[2], -1);
  EXPECT_EQ(plan.pinned[3], 0);  // D pinned.
  EXPECT_EQ(plan.component_of[3], -1);
}

TEST(OptPassTest, DeadFlowFoldingListsDeadAndLiteralOnlyFlows) {
  const Query query = MustParse(
      "A = (v1 v2)\n"
      "shard src -> A size 32M\n"
      "probe src -> A size 0\n"
      "ctrl h1 -> h2 size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, false);
  const PrunedSpace plan = lang::Optimize(compiled, status);
  // probe (zero size) and ctrl (binding-independent literal group).
  std::vector<int32_t> dead = plan.dead_flows;
  std::sort(dead.begin(), dead.end());
  EXPECT_EQ(dead, (std::vector<int32_t>{1, 2}));
}

TEST(OptPassTest, PassSelectionBitsDisablePasses) {
  const Query query = MustParse(
      "A = B = (v1 v2 v3)\n"
      "f1 src -> A size 1M rate 5M\n"
      "f2 src -> B size 1M rate r(f1)\n");
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, false);
  OptimizeParams params;
  params.passes = lang::kOptAllPasses & ~lang::kOptInterchangeable;
  const PrunedSpace plan = lang::Optimize(compiled, status, params);
  for (int32_t prev : plan.orbit_prev) {
    EXPECT_EQ(prev, -1);
  }
}

TEST(OptPassTest, PinnedVariablesNeverCarryOrbitConstraints) {
  // Regression for a fuzzer-found divergence: when every flow is dead, all
  // variables are inert (pinned) *and* trivially interchangeable. Orbit
  // constraints over pinned single-candidate pools would prune the one
  // remaining binding; Optimize must drop them.
  const Query query = MustParse(
      "A = B = (v1 v2 v3 v4)\n"
      "f0 A -> B size 0\n"
      "f1 B -> v4 size 0 start 1\n");
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, false);
  const PrunedSpace plan = lang::Optimize(compiled, status);
  for (size_t v = 0; v < plan.orbit_prev.size(); ++v) {
    if (plan.pinned[v] >= 0) {
      EXPECT_EQ(plan.orbit_prev[v], -1) << "variable " << v;
    }
  }
  EXPECT_FALSE(plan.infeasible);

  // And the engine must still find the binding with the plan applied.
  FlowLevelEstimator estimator;
  ExhaustiveParams off;
  ExhaustiveParams on;
  on.optimize = true;
  const auto base = EvaluateExhaustive(compiled, status, estimator, off);
  const auto opt = EvaluateExhaustive(compiled, status, estimator, on);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(opt.ok()) << opt.error().ToString();
  for (const auto& [var, endpoint] : base.value().binding) {
    EXPECT_EQ(opt.value().binding.at(var).name, endpoint.name) << var;
  }
}

// ---- Engine integration: counters and byte-identity ----

TEST(OptEngineTest, OptimizedSearchPrunesAndAgreesByteIdentically) {
  const Query query = MustParse(
      "option packet\n"
      "W1 = W2 = W3 = (10.0.1.1 10.0.1.2 10.0.1.3 10.0.1.4 10.0.1.5 10.0.1.6)\n"
      "s1 src -> W1 size 64M rate 800M\n"
      "s2 src -> W2 size 64M rate r(s1)\n"
      "s3 src -> W3 size 64M rate r(s1)\n");
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, /*heterogeneous=*/true);
  FlowLevelEstimator estimator;
  ExhaustiveParams off;
  ExhaustiveParams on;
  on.optimize = true;
  const auto base = EvaluateExhaustive(compiled, status, estimator, off);
  const auto opt = EvaluateExhaustive(compiled, status, estimator, on);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(opt.ok());
  // 6*5*4 = 120 ordered triples vs C(6,3) = 20 ascending representatives.
  EXPECT_EQ(base.value().counters.enumerated, 120);
  EXPECT_EQ(opt.value().counters.enumerated, 20);
  EXPECT_GT(opt.value().counters.orbit_skips, 0);
  EXPECT_EQ(opt.value().estimate.makespan, base.value().estimate.makespan);
  EXPECT_EQ(opt.value().estimate.aggregate_throughput,
            base.value().estimate.aggregate_throughput);
  for (const auto& [var, endpoint] : base.value().binding) {
    EXPECT_EQ(opt.value().binding.at(var).name, endpoint.name) << var;
  }
}

TEST(OptEngineTest, InfeasiblePlanReportsSameErrorAsExhaustion) {
  const Query query = MustParse(
      "A = B = C = (v1 v2)\n"
      "f1 A -> B size 1M\nf2 B -> C size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  const StatusByAddress status = SynthesizeStatus(compiled, false);
  FlowLevelEstimator estimator;
  ExhaustiveParams off;
  ExhaustiveParams on;
  on.optimize = true;
  const auto base = EvaluateExhaustive(compiled, status, estimator, off);
  const auto opt = EvaluateExhaustive(compiled, status, estimator, on);
  ASSERT_FALSE(base.ok());
  ASSERT_FALSE(opt.ok());
  EXPECT_EQ(opt.error().message, base.error().message);
}

// ---- Differential sweep over the repository fixtures ----

std::vector<std::filesystem::path> FixtureQueries() {
  std::vector<std::filesystem::path> paths;
  for (const char* dir : {"good", "opt"}) {
    const std::filesystem::path root = std::filesystem::path(CLOUDTALK_QUERY_DIR) / dir;
    if (!std::filesystem::exists(root)) {
      continue;
    }
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
      if (entry.path().extension() == ".ct") {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(OptDifferentialTest, FixturesAgreeByteIdenticallyAcrossModesAndThreads) {
  const std::vector<std::filesystem::path> fixtures = FixtureQueries();
  ASSERT_FALSE(fixtures.empty()) << "no fixtures under " << CLOUDTALK_QUERY_DIR;
  int swept = 0;
  for (const std::filesystem::path& path : fixtures) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    const Query query = MustParse(text.str());
    const CompiledQuery compiled = MustCompile(query);
    for (const bool heterogeneous : {false, true}) {
      const StatusByAddress status = SynthesizeStatus(compiled, heterogeneous);
      FlowLevelEstimator estimator;
      ExhaustiveParams off;
      off.distinct_bindings = !query.options.allow_same_binding;
      const auto base = EvaluateExhaustive(compiled, status, estimator, off);
      for (const int threads : {1, 4}) {
        ExhaustiveParams on = off;
        on.optimize = true;
        on.threads = threads;
        const auto opt = EvaluateExhaustive(compiled, status, estimator, on);
        const std::string label =
            path.filename().string() + (heterogeneous ? " het" : " idle") + " t" +
            std::to_string(threads);
        ASSERT_EQ(base.ok(), opt.ok()) << label;
        if (!base.ok()) {
          EXPECT_EQ(opt.error().message, base.error().message) << label;
          continue;
        }
        // EXPECT_EQ on doubles is exact: bit-identical, not "close".
        EXPECT_EQ(opt.value().estimate.makespan, base.value().estimate.makespan) << label;
        EXPECT_EQ(opt.value().estimate.aggregate_throughput,
                  base.value().estimate.aggregate_throughput)
            << label;
        ASSERT_EQ(opt.value().binding.size(), base.value().binding.size()) << label;
        for (const auto& [var, endpoint] : base.value().binding) {
          EXPECT_EQ(opt.value().binding.at(var).name, endpoint.name) << label << " " << var;
        }
        EXPECT_LE(opt.value().counters.enumerated, base.value().counters.enumerated) << label;
      }
    }
    ++swept;
  }
  EXPECT_GE(swept, 5);  // good/ + opt/ fixtures; update when fixtures move.
}

}  // namespace
}  // namespace cloudtalk
