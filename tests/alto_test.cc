// Tests for the ALTO baseline (Section 3.2) and its HDFS integration.
#include <gtest/gtest.h>

#include <set>

#include "src/alto/alto.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/hdfs/mini_hdfs.h"

namespace cloudtalk {
namespace {

Topology SmallVl2() {
  Vl2Params params;
  params.num_racks = 3;
  params.hosts_per_rack = 4;
  return MakeVl2(params);
}

TEST(AltoTest, PidsFollowRacks) {
  const Topology topo = SmallVl2();
  alto::AltoServer server(&topo);
  EXPECT_EQ(server.num_pids(), 3);
  EXPECT_EQ(server.PidOf(topo.hosts()[0]), server.PidOf(topo.hosts()[1]));
  EXPECT_NE(server.PidOf(topo.hosts()[0]), server.PidOf(topo.hosts()[4]));
}

TEST(AltoTest, CostsReflectProximity) {
  const Topology topo = SmallVl2();
  alto::AltoServer server(&topo);
  const NodeId a = topo.hosts()[0];
  EXPECT_DOUBLE_EQ(server.Cost(a, topo.hosts()[1]), 0.0);  // Same PID.
  EXPECT_GT(server.Cost(a, topo.hosts()[4]), 0.0);         // Cross rack.
}

TEST(AltoTest, SelectsNearestCandidate) {
  const Topology topo = SmallVl2();
  alto::AltoServer server(&topo);
  Rng rng(1);
  const NodeId client = topo.hosts()[0];
  const NodeId same_rack = topo.hosts()[2];
  const NodeId far = topo.hosts()[8];
  EXPECT_EQ(server.SelectEndpoint(client, {far, same_rack}, rng), same_rack);
}

TEST(AltoTest, TieBreaksAreUniformish) {
  const Topology topo = SmallVl2();
  alto::AltoServer server(&topo);
  Rng rng(7);
  const NodeId client = topo.hosts()[0];
  std::set<NodeId> picks;
  for (int i = 0; i < 64; ++i) {
    picks.insert(server.SelectEndpoint(client, {topo.hosts()[1], topo.hosts()[2]}, rng));
  }
  EXPECT_EQ(picks.size(), 2u);  // Both same-cost candidates get chosen.
}

TEST(AltoTest, MultiSelectDistinctAndNearestFirst) {
  const Topology topo = SmallVl2();
  alto::AltoServer server(&topo);
  Rng rng(3);
  const NodeId client = topo.hosts()[0];
  std::vector<NodeId> candidates(topo.hosts().begin() + 1, topo.hosts().end());
  const std::vector<NodeId> chosen = server.SelectEndpoints(client, candidates, 3, rng);
  ASSERT_EQ(chosen.size(), 3u);
  std::set<NodeId> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 3u);
  // The three same-rack candidates cost 0; they must fill the selection.
  for (NodeId host : chosen) {
    EXPECT_TRUE(topo.SameRack(client, host));
  }
}

TEST(AltoHdfsTest, ReadPrefersNearReplicaButIgnoresLoad) {
  // ALTO picks the same-rack replica even when it is overloaded — exactly
  // the Section 3.2 criticism ("does not include dynamic load information").
  Vl2Params params;
  params.num_racks = 2;
  params.hosts_per_rack = 4;
  Cluster cluster(MakeVl2(params));
  cluster.StartStatusSweep();
  alto::AltoServer alto_server(&cluster.topology());
  // The same-rack replica (host 1) is hammered; the far replica is idle.
  cluster.AddBackgroundPair(cluster.host(2), cluster.host(1), 950 * kMbps);
  cluster.AddBackgroundPair(cluster.host(1), cluster.host(2), 950 * kMbps);
  cluster.RunUntil(0.25);

  HdfsOptions options;
  options.alto = &alto_server;
  MiniHdfs hdfs(&cluster, options);
  hdfs.InstallFile("data", 256 * kMB, {{cluster.host(1), cluster.host(5)}});
  Seconds alto_time = -1;
  ASSERT_TRUE(hdfs.ReadFile(cluster.host(0), "data", [&](Seconds s, Seconds e) {
    alto_time = e - s;
  }));
  cluster.RunUntil(cluster.now() + 120);
  ASSERT_GT(alto_time, 0);

  // CloudTalk on the same layout reads from the idle far replica.
  HdfsOptions ct_options;
  ct_options.cloudtalk_reads = true;
  MiniHdfs ct_hdfs(&cluster, ct_options);
  ct_hdfs.InstallFile("data2", 256 * kMB, {{cluster.host(1), cluster.host(5)}});
  Seconds ct_time = -1;
  ASSERT_TRUE(ct_hdfs.ReadFile(cluster.host(0), "data2", [&](Seconds s, Seconds e) {
    ct_time = e - s;
  }));
  cluster.RunUntil(cluster.now() + 120);
  ASSERT_GT(ct_time, 0);
  EXPECT_GT(alto_time, ct_time * 2);
}

TEST(AltoHdfsTest, WritePipelineUsesNearestRemotes) {
  Vl2Params params;
  params.num_racks = 2;
  params.hosts_per_rack = 4;
  Cluster cluster(MakeVl2(params));
  alto::AltoServer alto_server(&cluster.topology());
  HdfsOptions options;
  options.alto = &alto_server;
  MiniHdfs hdfs(&cluster, options);
  ASSERT_TRUE(hdfs.WriteFile(cluster.host(0), "f", 256 * kMB, nullptr));
  cluster.sim().RunUntilIdle();
  const MiniHdfs::FileInfo* file = hdfs.GetFile("f");
  ASSERT_NE(file, nullptr);
  const auto& replicas = file->block_replicas[0];
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_EQ(replicas[0], cluster.host(0));
  // ALTO keeps the pipeline in the writer's rack.
  EXPECT_TRUE(cluster.topology().SameRack(replicas[0], replicas[1]));
  EXPECT_TRUE(cluster.topology().SameRack(replicas[0], replicas[2]));
}

}  // namespace
}  // namespace cloudtalk
