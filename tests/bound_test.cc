// Tests for the sound makespan-bound analysis (src/lang/bound.h).
//
// The randomized section checks the two contracts everything downstream
// leans on: refinement monotonicity (pinning a variable never lowers LB and
// never raises UB — what makes O500 branch-and-bound sound) and estimator
// soundness (every flow-level makespan lands inside the reported interval —
// invariant D502, also fuzzed by ctcheck --diff-bound). The fixed section
// pins down the deadline verdicts ctlint E080/W080 and the server admission
// fast path read off GroupBound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "src/core/estimator.h"
#include "src/lang/analysis.h"
#include "src/lang/bound.h"
#include "src/lang/parser.h"

namespace cloudtalk {
namespace {

using lang::BoundAnalysis;
using lang::BoundInterval;
using lang::BoundOptions;
using lang::CompiledQuery;
using lang::GroupBound;
using lang::Query;

Query MustParse(const std::string& text) {
  auto query = lang::Parse(text);
  EXPECT_TRUE(query.ok()) << (query.ok() ? text : query.error().ToString());
  return std::move(query).value();
}

CompiledQuery MustCompile(const std::string& text) {
  auto compiled = CompiledQuery::Compile(MustParse(text));
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? text : compiled.error().ToString());
  return std::move(compiled).value();
}

StatusReport MakeReport(Bps cap, Bps tx_use, Bps rx_use) {
  StatusReport r;
  r.nic_tx_cap = cap;
  r.nic_tx_use = tx_use;
  r.nic_rx_cap = cap;
  r.nic_rx_use = rx_use;
  r.disk_read_cap = 4e9;
  r.disk_write_cap = 4e9;
  return r;
}

// Small random query over a handful of literal 10.9.0.x hosts: 2-3
// variables with overlapping pools, 2-4 flows mixing variable and literal
// endpoints, literal sizes, occasional rate caps and rate chains.
std::string GenerateQuery(std::mt19937_64& rng) {
  const int num_hosts = 4 + static_cast<int>(rng() % 3);
  const int num_vars = 2 + static_cast<int>(rng() % 2);
  std::vector<std::string> hosts;
  for (int h = 0; h < num_hosts; ++h) {
    hosts.push_back("10.9.0." + std::to_string(h + 1));
  }
  std::string text;
  for (int v = 0; v < num_vars; ++v) {
    const int pool = 2 + static_cast<int>(rng() % (num_hosts - 1));
    std::string line(1, static_cast<char>('A' + v));
    line += " = (";
    for (int p = 0; p < pool; ++p) {
      if (p > 0) {
        line.push_back(' ');
      }
      line += hosts[(rng() + static_cast<uint64_t>(p)) % hosts.size()];
    }
    // Duplicate pool entries are legal (W011 is advisory) and only repeat
    // work in the enumeration below.
    text += line + ")\n";
  }
  const int num_flows = 2 + static_cast<int>(rng() % 3);
  for (int f = 0; f < num_flows; ++f) {
    std::string line = "f" + std::to_string(f) + " ";
    const auto endpoint = [&](bool avoid_var) -> std::string {
      if (!avoid_var && rng() % 2 == 0) {
        return std::string(1, static_cast<char>('A' + rng() % num_vars));
      }
      return hosts[rng() % hosts.size()];
    };
    const std::string src = endpoint(false);
    std::string dst = endpoint(false);
    while (dst == src) {
      dst = endpoint(false);
    }
    line += src + " -> " + dst + " size " + std::to_string(1 + rng() % 64) + "M";
    if (f > 0 && rng() % 3 == 0) {
      line += " rate r(f" + std::to_string(rng() % f) + ")";  // Join a chain.
    } else if (rng() % 3 == 0) {
      line += " rate " + std::to_string(1 + rng() % 32) + "M";
    }
    text += line + "\n";
  }
  return text;
}

StatusByAddress GenerateStatus(const CompiledQuery& query, std::mt19937_64& rng) {
  StatusByAddress status;
  const auto touch = [&](const lang::Endpoint& e) {
    if (e.kind != lang::Endpoint::Kind::kAddress || e.name.empty()) {
      return;
    }
    const Bps cap = rng() % 2 == 0 ? 1e9 : 10e9;
    status[e.name] = MakeReport(cap, cap * (rng() % 100) / 100.0,
                                cap * (rng() % 100) / 100.0);
  };
  for (const auto& v : query.variables()) {
    for (const lang::Endpoint& e : v.pool) {
      touch(e);
    }
  }
  for (const auto& f : query.flows()) {
    touch(f.src);
    touch(f.dst);
  }
  return status;
}

// Interned candidate ids per variable (every pool entry is a literal).
std::vector<std::vector<int32_t>> CandidateIds(const CompiledQuery& query,
                                               const BoundAnalysis& bounds) {
  std::vector<std::vector<int32_t>> ids(query.variables().size());
  for (size_t v = 0; v < query.variables().size(); ++v) {
    for (const lang::Endpoint& e : query.variables()[v].pool) {
      const int32_t id = bounds.HostId(e.name);
      EXPECT_GE(id, 0) << e.name;
      ids[v].push_back(id);
    }
  }
  return ids;
}

TEST(BoundAnalysisTest, RandomizedRefinementMonotonicity) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed);
    const std::string text = GenerateQuery(rng);
    SCOPED_TRACE(text);
    const CompiledQuery query = MustCompile(text);
    const StatusByAddress status = GenerateStatus(query, rng);
    const BoundAnalysis bounds = BoundAnalysis::Build(query, status);
    std::vector<std::vector<int32_t>> ids;
    CandidateIds(query, bounds).swap(ids);

    const size_t n = query.variables().size();
    std::vector<int32_t> var_host(n, -1);
    BoundInterval prev = bounds.BindingBounds(var_host);
    EXPECT_LE(bounds.query_bounds().lb, prev.lb);
    EXPECT_GE(bounds.query_bounds().ub, prev.ub);

    BoundAnalysis::Cursor cursor = bounds.MakeCursor();
    Seconds prev_cursor_lb = cursor.LowerBound();

    // Pin the variables one at a time, in a random order, each to a random
    // pool candidate not already taken (distinct semantics, the default).
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) {
      order[i] = i;
    }
    std::shuffle(order.begin(), order.end(), rng);
    for (const size_t v : order) {
      int32_t pick = -1;
      for (size_t attempt = 0; attempt < 32 && pick < 0; ++attempt) {
        const int32_t candidate = ids[v][rng() % ids[v].size()];
        if (std::find(var_host.begin(), var_host.end(), candidate) == var_host.end()) {
          pick = candidate;
        }
      }
      if (pick < 0) {
        break;  // Tiny overlapping pools can run out of distinct hosts.
      }
      var_host[v] = pick;
      const BoundInterval refined = bounds.BindingBounds(var_host);
      EXPECT_LE(refined.lb, refined.ub);
      EXPECT_GE(refined.lb, prev.lb) << "LB dropped when pinning var " << v;
      EXPECT_LE(refined.ub, prev.ub) << "UB rose when pinning var " << v;
      prev = refined;

      cursor.Assign(static_cast<int>(v), pick);
      const Seconds cursor_lb = cursor.LowerBound();
      EXPECT_GE(cursor_lb, prev_cursor_lb) << "cursor LB dropped at var " << v;
      EXPECT_LE(cursor_lb, refined.lb)
          << "cursor LB must stay a conservative subset of BindingBounds";
      prev_cursor_lb = cursor_lb;
    }

    // Unassigning everything returns the cursor to the unpinned bound.
    for (const size_t v : order) {
      if (var_host[v] >= 0) {
        cursor.Unassign(static_cast<int>(v));
      }
    }
    EXPECT_DOUBLE_EQ(cursor.LowerBound(), bounds.MakeCursor().LowerBound());
  }
}

TEST(BoundAnalysisTest, RandomizedEstimatorSoundness) {
  int checked_bindings = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
    const std::string text = GenerateQuery(rng);
    SCOPED_TRACE(text);
    const CompiledQuery query = MustCompile(text);
    const StatusByAddress status = GenerateStatus(query, rng);
    const BoundAnalysis bounds = BoundAnalysis::Build(query, status);
    std::vector<std::vector<int32_t>> ids;
    CandidateIds(query, bounds).swap(ids);

    const size_t n = query.variables().size();
    FlowLevelEstimator estimator;  // Fraction 0.1 = BoundOptions default.
    estimator.BeginQuery(query, status);
    Binding binding;
    std::vector<lang::Endpoint*> slot(n);
    for (size_t v = 0; v < n; ++v) {
      binding[query.variables()[v].name] = lang::Endpoint::Address("");
      slot[v] = &binding[query.variables()[v].name];
    }
    std::vector<int32_t> var_host(n, -1);

    const std::function<void(size_t)> walk = [&](size_t d) {
      if (d == n) {
        const Result<Estimate> est = estimator.EstimateQuery(query, binding, status);
        if (!est.ok()) {
          return;  // E.g. no-route bindings; bounds only cover successes.
        }
        const Seconds makespan = est.value().makespan;
        EXPECT_TRUE(bounds.BindingBounds(var_host).Contains(makespan))
            << "makespan " << makespan << " outside pinned interval";
        EXPECT_TRUE(bounds.query_bounds().Contains(makespan))
            << "makespan " << makespan << " outside query interval";
        ++checked_bindings;
        return;
      }
      for (size_t c = 0; c < ids[d].size(); ++c) {
        bool clash = false;
        for (size_t p = 0; p < d; ++p) {
          clash = clash || var_host[p] == ids[d][c];
        }
        if (clash) {
          continue;  // Distinct bindings, the default semantics.
        }
        slot[d]->name = query.variables()[d].pool[c].name;
        var_host[d] = ids[d][c];
        walk(d + 1);
        var_host[d] = -1;
      }
    };
    walk(0);
    estimator.EndQuery();
  }
  EXPECT_GT(checked_bindings, 100);  // The sweep must actually exercise bindings.
}

TEST(BoundAnalysisTest, DeadlineVerdictsMatchTheInterval) {
  // size/rate = 10G * 8 / 8M bits/s far exceeds 1s: provably infeasible.
  const CompiledQuery infeasible =
      MustCompile("f1 10.9.0.1 -> 10.9.0.2 size 10G rate 8M end 1\n");
  const BoundAnalysis a = BoundAnalysis::Build(infeasible, StatusByAddress{});
  ASSERT_EQ(a.group_bounds().size(), 1u);
  EXPECT_TRUE(a.group_bounds()[0].provably_infeasible);
  EXPECT_FALSE(a.group_bounds()[0].trivially_satisfied);
  EXPECT_GT(a.group_bounds()[0].interval.lb, a.group_bounds()[0].deadline);

  // The same transfer against a generous deadline is trivially satisfied.
  const CompiledQuery trivial =
      MustCompile("f1 10.9.0.1 -> 10.9.0.2 size 1M end 3600\n");
  const BoundAnalysis b = BoundAnalysis::Build(trivial, StatusByAddress{});
  ASSERT_EQ(b.group_bounds().size(), 1u);
  EXPECT_FALSE(b.group_bounds()[0].provably_infeasible);
  EXPECT_TRUE(b.group_bounds()[0].trivially_satisfied);
  EXPECT_LE(b.group_bounds()[0].interval.ub, b.group_bounds()[0].deadline);

  // No deadline: both verdicts stay off and the deadline reads +inf.
  const CompiledQuery open = MustCompile("f1 10.9.0.1 -> 10.9.0.2 size 1M\n");
  const BoundAnalysis c = BoundAnalysis::Build(open, StatusByAddress{});
  ASSERT_EQ(c.group_bounds().size(), 1u);
  EXPECT_FALSE(c.group_bounds()[0].provably_infeasible);
  EXPECT_FALSE(c.group_bounds()[0].trivially_satisfied);
}

TEST(BoundAnalysisTest, GuardBandBracketsTheRawValue) {
  for (const Seconds raw : {0.0, 1e-9, 0.25, 1.0, 3600.0, 1e12}) {
    EXPECT_LE(lang::GuardLowerBound(raw), raw);
    EXPECT_GE(lang::GuardUpperBound(raw), raw);
    EXPECT_GE(lang::GuardLowerBound(raw), 0.0);
  }
}

}  // namespace
}  // namespace cloudtalk
