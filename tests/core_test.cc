// Tests for the CloudTalk server core: heuristic, estimator, exhaustive
// search, reservations, sampling integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/core/directory.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/core/policy.h"
#include "src/core/reservations.h"
#include "src/core/server.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/status/status_server.h"
#include "src/status/transport.h"

namespace cloudtalk {
namespace {

using lang::CompiledQuery;
using lang::Endpoint;
using lang::Parse;
using lang::Query;

StatusReport MakeReport(Bps cap, Bps tx_use, Bps rx_use, Bps disk_cap = 4e9,
                        Bps disk_read_use = 0, Bps disk_write_use = 0) {
  StatusReport r;
  r.nic_tx_cap = cap;
  r.nic_tx_use = tx_use;
  r.nic_rx_cap = cap;
  r.nic_rx_use = rx_use;
  r.disk_read_cap = disk_cap;
  r.disk_read_use = disk_read_use;
  r.disk_write_cap = disk_cap;
  r.disk_write_use = disk_write_use;
  return r;
}

CompiledQuery MustCompile(const Query& query) {
  auto compiled = CompiledQuery::Compile(query);
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error().ToString());
  return std::move(compiled).value();
}

Query MustParse(const std::string& text) {
  auto query = Parse(text);
  EXPECT_TRUE(query.ok()) << (query.ok() ? "" : query.error().ToString());
  return std::move(query).value();
}

// ---- Fitness functions ----

TEST(FitnessTest, LinearWeightTradesCapacityAgainstContention) {
  // The paper's linear model: with W=2 the fast-but-loaded host scores
  // 10G - 2*5G = 0 < 1G; with W=0 raw capacity wins.
  const StatusReport slow_idle = MakeReport(1e9, 0, 0);
  const StatusReport fast_loaded = MakeReport(10e9, 5e9, 5e9);
  EXPECT_GT(EvalTx(slow_idle, 2.0, FitnessModel::kLinear),
            EvalTx(fast_loaded, 2.0, FitnessModel::kLinear));
  EXPECT_LT(EvalTx(slow_idle, 0.0, FitnessModel::kLinear),
            EvalTx(fast_loaded, 0.0, FitnessModel::kLinear));
}

TEST(FitnessTest, FairShareAvoidsSaturationInversion) {
  // The repository-default model: among two saturated disks, the faster one
  // still wins (its elastic competitors would yield a fair share); the
  // linear model inverts this (DESIGN.md reproduction note).
  const double fast_saturated = EvalFitness(3e9, 3e9, 2.0, FitnessModel::kFairShare);
  const double slow_saturated = EvalFitness(375e6, 375e6, 2.0, FitnessModel::kFairShare);
  EXPECT_GT(fast_saturated, slow_saturated);
  EXPECT_LT(EvalFitness(3e9, 3e9, 2.0, FitnessModel::kLinear),
            EvalFitness(375e6, 375e6, 2.0, FitnessModel::kLinear));
}

TEST(FitnessTest, FairShareMonotoneInUsage) {
  for (double cap : {1e9, 3e9, 10e9}) {
    double prev = EvalFitness(cap, 0, 2.0, FitnessModel::kFairShare);
    EXPECT_DOUBLE_EQ(prev, cap);  // Idle: full capacity.
    for (double frac = 0.1; frac <= 1.01; frac += 0.1) {
      const double score = EvalFitness(cap, frac * cap, 2.0, FitnessModel::kFairShare);
      EXPECT_LE(score, prev + 1e-9);
      EXPECT_GT(score, 0.0);
      prev = score;
    }
  }
}

// ---- Heuristic: the paper's Section 4.2 walkthrough ----

TEST(HeuristicTest, PaperExampleBindsZToLocalEndpoint) {
  // X = Y = Z = (a b c); f1: X->Y 100M; f2: Z->a 100M.
  // Z must be bound to a (loopback); X gets the best tx of {b, c}; Y the rest.
  const Query query = MustParse(
      "X = Y = Z = (a b c)\n"
      "f1 X -> Y size 100M\n"
      "f2 Z -> a size 100M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["a"] = MakeReport(1e9, 100e6, 100e6);
  status["b"] = MakeReport(1e9, 600e6, 0);      // Busy sender.
  status["c"] = MakeReport(1e9, 100e6, 300e6);  // Mostly idle sender.
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok()) << result.error().ToString();
  const Binding& binding = result.value().binding;
  EXPECT_EQ(binding.at("Z").name, "a");
  // X transmits: c has more tx headroom than b.
  EXPECT_EQ(binding.at("X").name, "c");
  EXPECT_EQ(binding.at("Y").name, "b");
}

TEST(HeuristicTest, PriorityBindingAblationLosesLocalOptimum) {
  // With priority binding disabled, X binds first (declaration order) and
  // can steal `a`, preventing the free local binding for Z (DESIGN.md #3).
  const Query query = MustParse(
      "X = Y = Z = (a b c)\n"
      "f1 X -> Y size 100M\n"
      "f2 Z -> a size 100M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["a"] = MakeReport(1e9, 0, 0);  // a looks best for everyone.
  status["b"] = MakeReport(1e9, 500e6, 500e6);
  status["c"] = MakeReport(1e9, 600e6, 600e6);
  HeuristicParams params;
  params.enable_priority_binding = false;
  auto result = EvaluateHeuristic(compiled, status, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("X").name, "a");
  EXPECT_NE(result.value().binding.at("Z").name, "a");
}

TEST(HeuristicTest, DistinctBindingsByDefault) {
  const Query query = MustParse(
      "A = B = (x y z)\n"
      "f1 A -> sink size 1M\n"
      "f2 B -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 0, 0);
  status["y"] = MakeReport(1e9, 100e6, 0);
  status["z"] = MakeReport(1e9, 900e6, 0);
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value().binding.at("A").name, result.value().binding.at("B").name);
  EXPECT_EQ(result.value().binding.at("A").name, "x");
  EXPECT_EQ(result.value().binding.at("B").name, "y");
}

TEST(HeuristicTest, AllowSameOverride) {
  const Query query = MustParse(
      "option allow_same\n"
      "A = B = (x y)\n"
      "f1 A -> sink size 1M\n"
      "f2 B -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 0, 0);
  status["y"] = MakeReport(1e9, 900e6, 0);
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("A").name, "x");
  EXPECT_EQ(result.value().binding.at("B").name, "x");
}

TEST(HeuristicTest, PoolWrapsWhenMoreVariablesThanValues) {
  // Section 5.3 reduce query: "If there are less nodes than reduce tasks,
  // then everyone receives at least one reduce task."
  const Query query = MustParse(
      "a1 = a2 = a3 = a4 = a5 = (x y)\n"
      "f1 0.0.0.0 -> a1 size 1G\n"
      "f2 0.0.0.0 -> a2 size 1G\n"
      "f3 0.0.0.0 -> a3 size 1G\n"
      "f4 0.0.0.0 -> a4 size 1G\n"
      "f5 0.0.0.0 -> a5 size 1G\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 0, 0);
  status["y"] = MakeReport(1e9, 0, 100e6);
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  int x_count = 0;
  int y_count = 0;
  for (const auto& [var, endpoint] : result.value().binding) {
    (void)var;
    (endpoint.name == "x" ? x_count : y_count) += 1;
  }
  EXPECT_EQ(x_count + y_count, 5);
  EXPECT_GE(x_count, 2);  // Both servers get work.
  EXPECT_GE(y_count, 2);
}

TEST(HeuristicTest, ReservationFilterSkipsReservedBest) {
  const Query query = MustParse(
      "A = (x y)\n"
      "f1 A -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 0, 0);        // Best.
  status["y"] = MakeReport(1e9, 400e6, 0);    // Second.
  auto reserved = [](const std::string& address) { return address == "x"; };
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{}, reserved);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("A").name, "y");
}

TEST(HeuristicTest, AllReservedFallsBackToBest) {
  const Query query = MustParse(
      "A = (x y)\n"
      "f1 A -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 0, 0);
  status["y"] = MakeReport(1e9, 400e6, 0);
  auto reserved = [](const std::string&) { return true; };
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{}, reserved);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("A").name, "x");
}

TEST(HeuristicTest, DiskOnlyVariableScoredByDisk) {
  const Query query = MustParse(
      "A = (x y)\n"
      "f1 disk -> A size 1G\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 0, 0, /*disk_cap=*/4e9, /*disk_read_use=*/3.9e9);
  status["y"] = MakeReport(1e9, 900e6, 900e6, /*disk_cap=*/4e9, /*disk_read_use=*/0);
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  // NIC load is irrelevant: A only reads from its local disk.
  EXPECT_EQ(result.value().binding.at("A").name, "y");
}


// ---- Section 7 extension: scalar requirements in the heuristic ----

TEST(HeuristicTest, RequirementFiltersOverloadedHosts) {
  const Query query = MustParse(
      "X = (a b)\n"
      "X requires cpu 4 mem 8G\n"
      "f1 X -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  StatusReport a = MakeReport(1e9, 0, 0);  // Network-idle but CPU-starved.
  a.cpu_cores_total = 8;
  a.cpu_cores_used = 6;  // Only 2 cores free < 4 required.
  a.mem_total = 32.0 * kGB;
  StatusReport b = MakeReport(1e9, 500e6, 0);  // Busier network, free CPU.
  b.cpu_cores_total = 8;
  b.mem_total = 32.0 * kGB;
  status["a"] = a;
  status["b"] = b;
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("X").name, "b");
}

TEST(HeuristicTest, RequirementMemoryShortfall) {
  const Query query = MustParse(
      "X = (a b)\n"
      "X requires mem 16G\n"
      "f1 X -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  StatusReport a = MakeReport(1e9, 0, 0);
  a.mem_total = 32.0 * kGB;
  a.mem_used = 30.0 * kGB;  // 2 GB free.
  StatusReport b = MakeReport(1e9, 800e6, 100e6);
  b.mem_total = 32.0 * kGB;
  status["a"] = a;
  status["b"] = b;
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("X").name, "b");
}

TEST(HeuristicTest, UnknownScalarStatePasses) {
  // A report without CPU/memory info (total == 0) must not be filtered.
  const Query query = MustParse(
      "X = (a b)\n"
      "X requires cpu 64\n"
      "f1 X -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["a"] = MakeReport(1e9, 0, 0);        // No scalar info at all.
  status["b"] = MakeReport(1e9, 500e6, 0);
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("X").name, "a");
}

TEST(HeuristicTest, AllCandidatesFilteredStillBinds) {
  const Query query = MustParse(
      "X = (a)\n"
      "X requires cpu 4\n"
      "f1 X -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  StatusReport a = MakeReport(1e9, 0, 0);
  a.cpu_cores_total = 2;  // Can never satisfy 4 cores.
  status["a"] = a;
  auto result = EvaluateHeuristic(compiled, status, HeuristicParams{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().binding.at("X").name, "a");  // Best effort.
}



// ---- Provider traffic policy (Section 2) ----

TEST(PolicyTest, ClassifiesScatterGather) {
  // 10 small flows converging on one aggregator.
  std::string text = "AGG = (a1 a2)\n";
  for (int i = 0; i < 10; ++i) {
    text += "f" + std::to_string(i) + " leaf" + std::to_string(i) + " -> AGG size 10KB\n";
  }
  const Query query = MustParse(text);
  const CompiledQuery compiled = MustCompile(query);
  const TransportPolicy policy = ClassifyQuery(compiled);
  EXPECT_EQ(policy.traffic_class, TrafficClass::kScatterGather);
  EXPECT_TRUE(policy.enable_pfc);
  EXPECT_EQ(policy.multipath_subflows, 1);
}

TEST(PolicyTest, ClassifiesElephants) {
  const Query query = MustParse(
      "f1 a -> b size 1G\n"
      "f2 c -> d size 512M\n");
  const CompiledQuery compiled = MustCompile(query);
  const TransportPolicy policy = ClassifyQuery(compiled);
  EXPECT_EQ(policy.traffic_class, TrafficClass::kElephant);
  EXPECT_FALSE(policy.enable_pfc);
  EXPECT_GT(policy.multipath_subflows, 1);
}

TEST(PolicyTest, MixedTrafficLeavesDefaults) {
  // A few mid-sized flows: neither incast-prone nor elephants.
  const Query query = MustParse(
      "f1 a -> b size 1M\n"
      "f2 c -> b size 1M\n"
      "f3 d -> e size 1G\n");
  const CompiledQuery compiled = MustCompile(query);
  const TransportPolicy policy = ClassifyQuery(compiled);
  EXPECT_EQ(policy.traffic_class, TrafficClass::kMixed);
  EXPECT_FALSE(policy.enable_pfc);
  EXPECT_EQ(policy.multipath_subflows, 1);
}

TEST(PolicyTest, DiskOnlyQueryIsMixed) {
  const Query query = MustParse("f1 disk -> a size 1G\n");
  const CompiledQuery compiled = MustCompile(query);
  EXPECT_EQ(ClassifyQuery(compiled).traffic_class, TrafficClass::kMixed);
}

TEST(PolicyTest, HdfsWritePipelineIsElephant) {
  // The Section 5.3 write query: 2 network elephants + disk hops.
  const Query query = MustParse(
      "r1 = r2 = (d1 d2 d3)\n"
      "f1 client -> r1 size 256M rate r(f2)\n"
      "f2 r1 -> disk size 256M rate r(f1)\n"
      "f3 r1 -> r2 size 256M rate r(f4) transfer t(f2)\n"
      "f4 r2 -> disk size 256M rate r(f3)\n");
  const CompiledQuery compiled = MustCompile(query);
  EXPECT_EQ(ClassifyQuery(compiled).traffic_class, TrafficClass::kElephant);
}

// ---- Flow-level estimator ----

TEST(EstimatorTest, SimpleTransferTime) {
  const Query query = MustParse("f1 src -> dst size 125M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["src"] = MakeReport(1e9, 0, 0);
  status["dst"] = MakeReport(1e9, 0, 0);
  FlowLevelEstimator estimator;
  auto estimate = estimator.EstimateQuery(compiled, {}, status);
  ASSERT_TRUE(estimate.ok()) << estimate.error().ToString();
  EXPECT_NEAR(estimate.value().makespan, 125 * kMB * 8 / 1e9, 1e-6);
}

TEST(EstimatorTest, BindingResolvesVariables) {
  const Query query = MustParse(
      "A = (r1 r2)\n"
      "f1 A -> client size 125M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["r1"] = MakeReport(1e9, 500e6, 0);  // Half-loaded sender.
  status["r2"] = MakeReport(1e9, 0, 0);
  status["client"] = MakeReport(1e9, 0, 0);
  FlowLevelEstimator estimator;
  Binding bind_r1{{"A", Endpoint::Address("r1")}};
  Binding bind_r2{{"A", Endpoint::Address("r2")}};
  auto est1 = estimator.EstimateQuery(compiled, bind_r1, status);
  auto est2 = estimator.EstimateQuery(compiled, bind_r2, status);
  ASSERT_TRUE(est1.ok());
  ASSERT_TRUE(est2.ok());
  EXPECT_GT(est1.value().makespan, est2.value().makespan);
  EXPECT_NEAR(est2.value().makespan, 125 * kMB * 8 / 1e9, 1e-6);
}

TEST(EstimatorTest, DaisyChainBoundBySlowestHop) {
  const Query query = MustParse(
      "f1 client -> r1 size 64M rate r(f2)\n"
      "f2 r1 -> disk size 64M rate r(f1)\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["client"] = MakeReport(1e9, 0, 0);
  status["r1"] = MakeReport(1e9, 0, 0, /*disk_cap=*/200e6);  // Slow disk.
  FlowLevelEstimator estimator;
  auto estimate = estimator.EstimateQuery(compiled, {}, status);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value().makespan, 64 * kMB * 8 / 200e6, 1e-6);
}

TEST(EstimatorTest, UnknownSourceOnlyLoadsReceiver) {
  const Query query = MustParse("f1 0.0.0.0 -> sink size 125M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["sink"] = MakeReport(1e9, 0, 0);
  FlowLevelEstimator estimator;
  auto estimate = estimator.EstimateQuery(compiled, {}, status);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value().makespan, 125 * kMB * 8 / 1e9, 1e-6);
}

TEST(EstimatorTest, UnboundVariableFails) {
  const Query query = MustParse(
      "A = (x)\n"
      "f1 A -> sink size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  FlowLevelEstimator estimator;
  EXPECT_FALSE(estimator.EstimateQuery(compiled, {}, {}).ok());
}

// ---- Exhaustive search ----

TEST(ExhaustiveTest, FindsOptimalReplica) {
  const Query query = MustParse(
      "A = (r1 r2 r3)\n"
      "f1 A -> client size 256M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["r1"] = MakeReport(1e9, 800e6, 0);
  status["r2"] = MakeReport(1e9, 200e6, 0);
  status["r3"] = MakeReport(1e9, 500e6, 0);
  status["client"] = MakeReport(1e9, 0, 0);
  FlowLevelEstimator estimator;
  auto best = EvaluateExhaustive(compiled, status, estimator);
  ASSERT_TRUE(best.ok()) << best.error().ToString();
  EXPECT_EQ(best.value().binding.at("A").name, "r2");
  EXPECT_EQ(best.value().counters.scored(), 3);
}

TEST(ExhaustiveTest, DistinctBindingEnumeration) {
  const Query query = MustParse(
      "A = B = (x y z)\n"
      "f1 A -> B size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  for (const char* s : {"x", "y", "z"}) {
    status[s] = MakeReport(1e9, 0, 0);
  }
  FlowLevelEstimator estimator;
  auto best = EvaluateExhaustive(compiled, status, estimator);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value().counters.scored(), 6);  // 3 * 2 ordered pairs.
  EXPECT_NE(best.value().binding.at("A").name, best.value().binding.at("B").name);
}

TEST(ExhaustiveTest, SpaceGuard) {
  const Query query = MustParse(
      "A = B = C = D = E = (v1 v2 v3 v4 v5 v6 v7 v8 v9 v10)\n"
      "f1 A -> B size 1M\nf2 C -> D size 1M\nf3 E -> v1 size 1M\n");
  const CompiledQuery compiled = MustCompile(query);
  FlowLevelEstimator estimator;
  ExhaustiveParams params;
  params.max_bindings = 100;  // 10^5 > 100.
  EXPECT_FALSE(EvaluateExhaustive(compiled, {}, estimator, params).ok());
}

// ---- Parallel exhaustive engine (ISSUE 1) ----

namespace exhaustive_parallel {

// Daisy chain over six hosts where s1/s2, s3/s4, s5/s6 are pairwise
// identical, so many bindings tie on makespan. The engine's tie-break
// (lowest makespan, then lexicographically-first odometer index) must make
// every thread count return byte-identical results.
CompiledQuery TieLadenDaisyChain(Query* storage, StatusByAddress* status) {
  *storage = MustParse(
      "x1 = x2 = x3 = (s1 s2 s3 s4 s5 s6)\n"
      "f1 x1 -> x2 size 100M\n"
      "f2 x2 -> x3 size 100M transfer t(f1)\n");
  status->clear();
  for (int i = 1; i <= 6; ++i) {
    // Pair index (i+1)/2 determines the load: identical within a pair.
    const double load = 100e6 * ((i + 1) / 2);
    (*status)["s" + std::to_string(i)] = MakeReport(1e9, load, load / 2);
  }
  return MustCompile(*storage);
}

ExhaustiveResult MustEvaluate(const CompiledQuery& compiled, const StatusByAddress& status,
                              const ExhaustiveParams& params) {
  FlowLevelEstimator estimator;
  auto result = EvaluateExhaustive(compiled, status, estimator, params);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().ToString());
  return std::move(result).value();
}

}  // namespace exhaustive_parallel

TEST(ExhaustiveParallelTest, ThreadCountsAgreeByteIdentically) {
  Query storage;
  StatusByAddress status;
  const CompiledQuery compiled = exhaustive_parallel::TieLadenDaisyChain(&storage, &status);
  ExhaustiveParams params;
  const ExhaustiveResult serial = exhaustive_parallel::MustEvaluate(compiled, status, params);
  for (int threads : {2, 4, 8}) {
    params.threads = threads;
    const ExhaustiveResult parallel =
        exhaustive_parallel::MustEvaluate(compiled, status, params);
    // EXPECT_EQ on doubles is exact: bit-identical makespans, not "close".
    EXPECT_EQ(parallel.estimate.makespan, serial.estimate.makespan) << threads;
    EXPECT_EQ(parallel.estimate.aggregate_throughput, serial.estimate.aggregate_throughput);
    EXPECT_EQ(parallel.counters.scored(), serial.counters.scored());
    for (const auto& [var, endpoint] : serial.binding) {
      EXPECT_EQ(parallel.binding.at(var).name, endpoint.name) << var << " @" << threads;
    }
    EXPECT_GT(parallel.counters.threads_used, 1);
  }
}

TEST(ExhaustiveParallelTest, DistinctBacktrackingAgreesAcrossThreadCounts) {
  // Shared pool with distinctness: the odometer prunes subtrees whose prefix
  // reuses a host (x1=x2 never reaches the x3 level). 6*5*4 = 120 legal
  // bindings out of 216.
  const Query query = MustParse(
      "x1 = x2 = x3 = (s1 s2 s3 s4 s5 s6)\n"
      "f1 x1 -> x2 size 50M\n"
      "f2 x2 -> x3 size 100M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  for (int i = 1; i <= 6; ++i) {
    status["s" + std::to_string(i)] = MakeReport(1e9, 120e6 * i, 40e6 * i);
  }
  ExhaustiveParams params;
  const ExhaustiveResult serial = exhaustive_parallel::MustEvaluate(compiled, status, params);
  EXPECT_EQ(serial.counters.scored(), 120);
  for (int threads : {2, 4, 8}) {
    params.threads = threads;
    const ExhaustiveResult parallel =
        exhaustive_parallel::MustEvaluate(compiled, status, params);
    EXPECT_EQ(parallel.counters.scored(), 120);
    EXPECT_EQ(parallel.estimate.makespan, serial.estimate.makespan);
    for (const auto& [var, endpoint] : serial.binding) {
      EXPECT_EQ(parallel.binding.at(var).name, endpoint.name) << var << " @" << threads;
    }
  }
}

TEST(ExhaustiveParallelTest, MemoHitsSymmetricBindings) {
  // f1 and f2 share a chain group (rate reference) and have equal sizes, so
  // bindings (A=a,B=b) and (A=b,B=a) have the same canonical signature: 6
  // ordered pairs, 3 distinct signatures, 3 memo hits. Hits still count as
  // bindings tried.
  const Query query = MustParse(
      "A = B = (x y z)\n"
      "f1 A -> c size 10M rate r(f2)\n"
      "f2 B -> c size 10M rate r(f1)\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  for (const char* s : {"x", "y", "z", "c"}) {
    status[s] = MakeReport(1e9, 0, 0);
  }
  ExhaustiveParams params;
  const ExhaustiveResult memoized = exhaustive_parallel::MustEvaluate(compiled, status, params);
  EXPECT_EQ(memoized.counters.scored(), 6);
  EXPECT_EQ(memoized.counters.memo_hits, 3);
  params.memoize = false;
  const ExhaustiveResult direct = exhaustive_parallel::MustEvaluate(compiled, status, params);
  EXPECT_EQ(direct.counters.memo_hits, 0);
  EXPECT_EQ(direct.counters.scored(), 6);
  EXPECT_EQ(direct.estimate.makespan, memoized.estimate.makespan);
  EXPECT_EQ(direct.binding.at("A").name, memoized.binding.at("A").name);
  EXPECT_EQ(direct.binding.at("B").name, memoized.binding.at("B").name);
}

TEST(ExhaustiveParallelTest, ThreadsZeroUsesHardwareConcurrency) {
  Query storage;
  StatusByAddress status;
  const CompiledQuery compiled = exhaustive_parallel::TieLadenDaisyChain(&storage, &status);
  ExhaustiveParams params;
  const ExhaustiveResult serial = exhaustive_parallel::MustEvaluate(compiled, status, params);
  params.threads = 0;  // Hardware concurrency, whatever this machine has.
  const ExhaustiveResult automatic = exhaustive_parallel::MustEvaluate(compiled, status, params);
  EXPECT_GE(automatic.counters.threads_used, 1);
  EXPECT_EQ(automatic.estimate.makespan, serial.estimate.makespan);
  EXPECT_EQ(automatic.counters.scored(), serial.counters.scored());
}

// ---- Estimator prepared scratch (ISSUE 1) ----

TEST(EstimatorScratchTest, ScratchMatchesColdPathBitExactly) {
  // Exercise every endpoint kind: unknown source, disk sink, loopback.
  const Query query = MustParse(
      "A = B = (x y z)\n"
      "f1 0.0.0.0 -> A size 64M\n"
      "f2 A -> disk size 32M\n"
      "f3 A -> B size 16M\n"
      "f4 A -> A size 8M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 300e6, 100e6, 3e9, 0, 500e6);
  status["y"] = MakeReport(1e9, 100e6, 600e6);
  status["z"] = MakeReport(2e9, 0, 0);
  FlowLevelEstimator scratch(0.1, /*reuse_scratch=*/true);
  FlowLevelEstimator cold(0.1, /*reuse_scratch=*/false);
  scratch.BeginQuery(compiled, status);
  EXPECT_TRUE(scratch.scratch_prepared());
  for (const char* a : {"x", "y", "z"}) {
    for (const char* b : {"x", "y", "z"}) {
      Binding binding;
      binding["A"] = Endpoint::Address(a);
      binding["B"] = Endpoint::Address(b);
      auto fast = scratch.EstimateQuery(compiled, binding, status);
      auto slow = cold.EstimateQuery(compiled, binding, status);
      ASSERT_TRUE(fast.ok()) << fast.error().ToString();
      ASSERT_TRUE(slow.ok()) << slow.error().ToString();
      EXPECT_EQ(fast.value().makespan, slow.value().makespan) << a << "," << b;
      EXPECT_EQ(fast.value().aggregate_throughput, slow.value().aggregate_throughput);
    }
  }
  scratch.EndQuery();
  EXPECT_FALSE(scratch.scratch_prepared());
}

TEST(EstimatorScratchTest, RepeatedUnknownEstimatesAreStable) {
  // Each 0.0.0.0 occurrence is a distinct abstract host; repeating the
  // estimate must not mint new ones (the per-query counter does not leak
  // across estimates).
  const Query query = MustParse(
      "A = (x y)\n"
      "f1 0.0.0.0 -> A size 64M\n"
      "f2 0.0.0.0 -> A size 64M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 0, 400e6);
  status["y"] = MakeReport(1e9, 0, 0);
  Binding binding;
  binding["A"] = Endpoint::Address("x");
  for (bool reuse : {true, false}) {
    FlowLevelEstimator estimator(0.1, reuse);
    estimator.BeginQuery(compiled, status);
    auto first = estimator.EstimateQuery(compiled, binding, status);
    ASSERT_TRUE(first.ok());
    for (int i = 0; i < 3; ++i) {
      auto again = estimator.EstimateQuery(compiled, binding, status);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again.value().makespan, first.value().makespan) << "reuse=" << reuse;
    }
    estimator.EndQuery();
  }
}

TEST(EstimatorScratchTest, OutOfPoolBindingFallsBackToColdPath) {
  const Query query = MustParse(
      "A = (x y)\n"
      "f1 A -> c size 64M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 500e6, 0);
  status["y"] = MakeReport(1e9, 100e6, 0);
  status["c"] = MakeReport(1e9, 0, 0);
  status["w"] = MakeReport(1e9, 0, 0);  // Not in the pool.
  FlowLevelEstimator estimator;
  estimator.BeginQuery(compiled, status);
  Binding binding;
  binding["A"] = Endpoint::Address("w");
  auto with_scratch = estimator.EstimateQuery(compiled, binding, status);
  estimator.EndQuery();
  FlowLevelEstimator cold(0.1, /*reuse_scratch=*/false);
  auto reference = cold.EstimateQuery(compiled, binding, status);
  ASSERT_TRUE(with_scratch.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(with_scratch.value().makespan, reference.value().makespan);
}

// ---- Incremental delta rebind (ISSUE 6) ----

TEST(EstimatorDeltaTest, DeltaRebindMatchesColdRebindBitExactly) {
  // Same fixture as ScratchMatchesColdPathBitExactly, but the two sides
  // differ in the rebind strategy: checkpoint restore + patch vs full group
  // re-install per binding. Bindings walk in odometer order with the suffix
  // hint, like the exhaustive engine drives it.
  const Query query = MustParse(
      "A = B = (x y z)\n"
      "f1 0.0.0.0 -> A size 64M\n"
      "f2 A -> disk size 32M\n"
      "f3 A -> B size 16M\n"
      "f4 A -> A size 8M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  status["x"] = MakeReport(1e9, 300e6, 100e6, 3e9, 0, 500e6);
  status["y"] = MakeReport(1e9, 100e6, 600e6);
  status["z"] = MakeReport(2e9, 0, 0);
  FlowLevelEstimator delta(0.1, /*reuse_scratch=*/true, /*delta_rebind=*/true);
  FlowLevelEstimator cold(0.1, /*reuse_scratch=*/true, /*delta_rebind=*/false);
  delta.BeginQuery(compiled, status);
  cold.BeginQuery(compiled, status);
  delta.BeginHintedWalk({"A", "B"});
  bool first = true;
  for (const char* a : {"x", "y", "z"}) {
    bool a_changed = true;
    for (const char* b : {"x", "y", "z"}) {
      Binding binding;
      binding["A"] = Endpoint::Address(a);
      binding["B"] = Endpoint::Address(b);
      delta.HintChangedSuffix(first ? 0 : (a_changed ? 0 : 1));
      first = false;
      a_changed = false;
      auto fast = delta.EstimateQuery(compiled, binding, status);
      auto slow = cold.EstimateQuery(compiled, binding, status);
      ASSERT_TRUE(fast.ok()) << fast.error().ToString();
      ASSERT_TRUE(slow.ok()) << slow.error().ToString();
      // Exact: the delta path must be indistinguishable from re-installing.
      EXPECT_EQ(fast.value().makespan, slow.value().makespan) << a << "," << b;
      EXPECT_EQ(fast.value().aggregate_throughput, slow.value().aggregate_throughput);
    }
  }
  delta.EndQuery();
  cold.EndQuery();
  const SolverStats delta_stats = delta.TakeSolverStats();
  const SolverStats cold_stats = cold.TakeSolverStats();
  EXPECT_EQ(delta_stats.cold_rebinds, 1);  // Install only.
  EXPECT_EQ(delta_stats.delta_rebinds, 8);
  EXPECT_EQ(cold_stats.delta_rebinds, 0);
  EXPECT_EQ(cold_stats.cold_rebinds, 9);
}

TEST(EstimatorDeltaTest, ExhaustiveSearchUsesDeltaRebinds) {
  // End to end through the engine: with memoisation off every enumerated
  // binding reaches the estimator, and all but the first per shard must be
  // served by the delta path. The answer matches a delta-off run bitwise.
  const Query query = MustParse(
      "x1 = x2 = x3 = (s1 s2 s3 s4 s5 s6)\n"
      "f1 x1 -> x2 size 50M\n"
      "f2 x2 -> x3 size 100M\n");
  const CompiledQuery compiled = MustCompile(query);
  StatusByAddress status;
  for (int i = 1; i <= 6; ++i) {
    status["s" + std::to_string(i)] = MakeReport(1e9, 120e6 * i, 40e6 * i);
  }
  ExhaustiveParams params;
  params.memoize = false;
  FlowLevelEstimator delta(0.1, /*reuse_scratch=*/true, /*delta_rebind=*/true);
  auto with_delta = EvaluateExhaustive(compiled, status, delta, params);
  FlowLevelEstimator cold(0.1, /*reuse_scratch=*/true, /*delta_rebind=*/false);
  auto without = EvaluateExhaustive(compiled, status, cold, params);
  ASSERT_TRUE(with_delta.ok()) << with_delta.error().ToString();
  ASSERT_TRUE(without.ok()) << without.error().ToString();
  EXPECT_EQ(with_delta.value().estimate.makespan, without.value().estimate.makespan);
  EXPECT_EQ(with_delta.value().estimate.aggregate_throughput,
            without.value().estimate.aggregate_throughput);
  for (const auto& [var, endpoint] : without.value().binding) {
    EXPECT_EQ(with_delta.value().binding.at(var).name, endpoint.name) << var;
  }
  const SearchCounters& c = with_delta.value().counters;
  EXPECT_EQ(c.scored(), 120);
  EXPECT_EQ(c.cold_rebinds, 1);  // One install for the single serial shard.
  EXPECT_EQ(c.delta_rebinds, c.evaluations - c.cold_rebinds);
  EXPECT_GT(c.solver_recomputes, 0);
  EXPECT_GT(c.delta_component_hits, 0);
  const SearchCounters& n = without.value().counters;
  EXPECT_EQ(n.delta_rebinds, 0);
  EXPECT_EQ(n.cold_rebinds, n.evaluations);
}

// ---- Heuristic optimality properties (paper Section 5.1 claims) ----

class SingleVariableOptimalityTest : public ::testing::TestWithParam<int> {};

// "Our algorithm is optimal for single variable queries."
TEST_P(SingleVariableOptimalityTest, MatchesExhaustive) {
  Rng rng(GetParam() * 131);
  StatusByAddress status;
  std::string pool;
  for (int i = 0; i < 10; ++i) {
    const std::string name = "s" + std::to_string(i);
    status[name] = MakeReport(1e9, rng.Uniform(0, 0.9) * 1e9, rng.Uniform(0, 0.9) * 1e9);
    pool += name + " ";
  }
  status["client"] = MakeReport(1e9, 0, 0);
  const Query query = MustParse("A = (" + pool + ")\nf1 A -> client size 256M\n");
  const CompiledQuery compiled = MustCompile(query);
  FlowLevelEstimator estimator;
  HeuristicParams params;
  params.weight = 1.0;  // Equal-capacity pool: availability ordering is exact.
  auto heuristic = EvaluateHeuristic(compiled, status, params);
  auto exhaustive = EvaluateExhaustive(compiled, status, estimator);
  ASSERT_TRUE(heuristic.ok());
  ASSERT_TRUE(exhaustive.ok());
  // Compare achieved makespan, not identity (ties are possible).
  auto h_est =
      estimator.EstimateQuery(compiled, heuristic.value().binding, status);
  ASSERT_TRUE(h_est.ok());
  EXPECT_NEAR(h_est.value().makespan, exhaustive.value().estimate.makespan, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomStates, SingleVariableOptimalityTest, ::testing::Range(1, 21));

// ---- Reservations ----

TEST(ReservationTest, ExpiryAndHold) {
  ReservationTable table(/*hold_time=*/0.3);
  table.Reserve("x", /*now=*/1.0);
  EXPECT_TRUE(table.IsReserved("x", 1.1));
  EXPECT_TRUE(table.IsReserved("x", 1.29));
  EXPECT_FALSE(table.IsReserved("x", 1.31));
  EXPECT_FALSE(table.IsReserved("y", 1.1));
}

TEST(ReservationTest, ZeroHoldDisables) {
  ReservationTable table(0.0);
  table.Reserve("x", 1.0);
  EXPECT_FALSE(table.IsReserved("x", 1.0));
}

TEST(ReservationTest, ActiveCount) {
  ReservationTable table(0.5);
  table.Reserve("x", 0.0);
  table.Reserve("y", 0.2);
  EXPECT_EQ(table.ActiveCount(0.3), 2);
  EXPECT_EQ(table.ActiveCount(0.6), 1);
  EXPECT_EQ(table.ActiveCount(1.0), 0);
}

// ---- Server end-to-end ----

class ClusterSource : public UsageSource {
 public:
  explicit ClusterSource(const Topology* topo) : topo_(topo) {}
  StatusReport Snapshot(NodeId host) override {
    const auto it = reports_.find(host);
    if (it != reports_.end()) {
      return it->second;
    }
    return StatusReport::Idle(host, topo_->host_caps(host));
  }
  void Set(NodeId host, StatusReport report) {
    report.host = host;
    reports_[host] = report;
  }

 private:
  const Topology* topo_;
  std::unordered_map<NodeId, StatusReport> reports_;
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SingleSwitchParams params;
    params.num_hosts = 10;
    topo_ = MakeSingleSwitch(params);
    source_ = std::make_unique<ClusterSource>(&topo_);
    directory_ = std::make_unique<TopologyDirectory>(&topo_);
    std::unordered_map<NodeId, StatusServer*> map;
    for (NodeId h : topo_.hosts()) {
      servers_.push_back(std::make_unique<StatusServer>(h, source_.get(), 0.0));
      map[h] = servers_.back().get();
      directory_->AddAlias("host" + std::to_string(h), h);
    }
    transport_ = std::make_unique<SimUdpTransport>(std::move(map), SimUdpParams{}, 1);
  }

  CloudTalkServer MakeServer(ServerConfig config = {}) {
    return CloudTalkServer(config, directory_.get(), transport_.get(),
                           [this] { return now_; });
  }

  std::string Ip(int host_index) const { return topo_.IpOf(topo_.hosts()[host_index]); }

  Topology topo_;
  std::unique_ptr<ClusterSource> source_;
  std::unique_ptr<TopologyDirectory> directory_;
  std::vector<std::unique_ptr<StatusServer>> servers_;
  std::unique_ptr<SimUdpTransport> transport_;
  Seconds now_ = 0;
};

TEST_F(ServerTest, AnswersReplicaQuery) {
  // Make host 1 busy, host 2 idle; the query should pick host 2.
  StatusReport busy = StatusReport::AssumeLoaded(0, topo_.host_caps(topo_.hosts()[1]));
  source_->Set(topo_.hosts()[1], busy);
  CloudTalkServer server = MakeServer();
  auto reply = server.Answer("A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) +
                             " size 256M\n");
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(reply.value().binding.at("A").name, Ip(2));
  EXPECT_EQ(reply.value().probe_stats.requests_sent, 3);  // 2 pool + 1 literal.
  EXPECT_EQ(reply.value().probe_stats.replies_received, 3);
}

TEST_F(ServerTest, ReservationPreventsImmediateReuse) {
  CloudTalkServer server = MakeServer();
  const std::string query =
      "A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 256M\n";
  auto first = server.Answer(query);
  ASSERT_TRUE(first.ok());
  const std::string first_pick = first.value().binding.at("A").name;
  auto second = server.Answer(query);  // Same sim time: within hold window.
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value().binding.at("A").name, first_pick);
  // After the hold expires the original best is available again.
  now_ = 1.0;
  auto third = server.Answer(query);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().binding.at("A").name, first_pick);
}

TEST_F(ServerTest, MissingRepliesAssumedLoaded) {
  // Use a transport that drops everything: every candidate looks loaded, but
  // an answer is still produced.
  SimUdpParams lossy;
  lossy.base_loss = 1.0;
  SimUdpTransport dead_transport({}, lossy, 1);
  ServerConfig config;
  CloudTalkServer server(config, directory_.get(), &dead_transport, [] { return 0.0; });
  auto reply =
      server.Answer("A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 1M\n");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().probe_stats.replies_received, 0);
  EXPECT_FALSE(reply.value().binding.at("A").name.empty());
}

TEST_F(ServerTest, StaticOptionSkipsProbing) {
  CloudTalkServer server = MakeServer();
  auto reply = server.Answer("option static\nA = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " +
                             Ip(0) + " size 1M\n");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().probe_stats.requests_sent, 0);
}

TEST_F(ServerTest, SamplingCapsProbeCount) {
  ServerConfig config;
  config.sample_threshold = 4;   // Tiny threshold to trigger sampling.
  config.sample_override = 5;
  CloudTalkServer server = MakeServer(config);
  std::string pool;
  for (int i = 0; i < 9; ++i) {
    pool += Ip(i) + " ";
  }
  auto reply = server.Answer("A = (" + pool + ")\nf1 A -> " + Ip(9) + " size 1M\n");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().probe_stats.requests_sent, 6);  // 5 sampled + 1 literal.
}

TEST_F(ServerTest, ProbeStatsAccumulate) {
  CloudTalkServer server = MakeServer();
  const std::string query =
      "A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 1M\n";
  ASSERT_TRUE(server.Answer(query).ok());
  ASSERT_TRUE(server.Answer(query).ok());
  EXPECT_EQ(server.total_probe_stats().requests_sent, 6);
  EXPECT_EQ(server.total_probe_stats().bytes_sent, 6 * 64);
}

TEST_F(ServerTest, AnswerCacheServesEquivalentSpelling) {
  ServerConfig config;
  config.answer_cache = true;
  config.reservation_hold = 0;  // Reservation-free answers are cache-pure.
  CloudTalkServer server = MakeServer(config);
  const std::string original = "A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) +
                               " size 2*128M\nf2 " + Ip(3) + " -> " + Ip(4) + " size 1M\n";
  // The same query renamed, reordered, and with the size pre-folded.
  const std::string respelled = "Pool = (" + Ip(1) + " " + Ip(2) + ")\ncopy " + Ip(3) +
                                " -> " + Ip(4) + " size 1M\nwrite Pool -> " + Ip(0) +
                                " size 256M\n";
  auto cold = server.Answer(original);
  ASSERT_TRUE(cold.ok()) << cold.error().ToString();
  const int cold_probes = server.total_probe_stats().requests_sent;
  EXPECT_GT(cold_probes, 0);

  auto hit = server.Answer(respelled);
  ASSERT_TRUE(hit.ok()) << hit.error().ToString();
  // Served from the canonical cache: no new probes went out...
  EXPECT_EQ(server.total_probe_stats().requests_sent, cold_probes);
  // ...the binding speaks the respelled query's vocabulary...
  ASSERT_EQ(hit.value().binding.count("Pool"), 1u);
  EXPECT_EQ(hit.value().binding.at("Pool").name, cold.value().binding.at("A").name);
  // ...and the payload matches the cold answer apart from the renaming.
  EXPECT_EQ(hit.value().probe_stats.requests_sent, cold.value().probe_stats.requests_sent);
  ASSERT_EQ(hit.value().scores.size(), cold.value().scores.size());
  for (size_t i = 0; i < hit.value().scores.size(); ++i) {
    EXPECT_EQ(hit.value().scores[i].second, cold.value().scores[i].second);
  }
}

TEST_F(ServerTest, AnswerCacheMemoizesRepeatedSpelling) {
  // A spelling seen before skips the language front end via the memo; the
  // reply must still carry that spelling's lint warnings, and invalidation
  // must still force a cold re-answer (the memo never caches status).
  ServerConfig config;
  config.answer_cache = true;
  config.reservation_hold = 0;
  CloudTalkServer server = MakeServer(config);
  // Duplicate pool entry: the query is answerable but carries W011.
  const std::string query = "A = (" + Ip(1) + " " + Ip(2) + " " + Ip(1) + ")\nf1 A -> " +
                            Ip(0) + " size 1M\n";
  auto cold = server.Answer(query);
  ASSERT_TRUE(cold.ok()) << cold.error().ToString();
  ASSERT_EQ(cold.value().warnings.size(), 1u);
  EXPECT_EQ(cold.value().warnings[0].code, "W011");
  const int cold_probes = server.total_probe_stats().requests_sent;

  auto memoized = server.Answer(query);
  ASSERT_TRUE(memoized.ok());
  EXPECT_EQ(server.total_probe_stats().requests_sent, cold_probes);  // Hit.
  ASSERT_EQ(memoized.value().warnings.size(), 1u);
  EXPECT_EQ(memoized.value().warnings[0].code, "W011");
  EXPECT_EQ(memoized.value().binding.at("A").name, cold.value().binding.at("A").name);

  server.InvalidateAnswerCache();
  ASSERT_TRUE(server.Answer(query).ok());
  EXPECT_EQ(server.total_probe_stats().requests_sent, 2 * cold_probes);
}

TEST_F(ServerTest, AnswerCacheInvalidationForcesReprobe) {
  ServerConfig config;
  config.answer_cache = true;
  config.reservation_hold = 0;
  CloudTalkServer server = MakeServer(config);
  const std::string query =
      "A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 1M\n";
  ASSERT_TRUE(server.Answer(query).ok());
  const int cold_probes = server.total_probe_stats().requests_sent;
  ASSERT_TRUE(server.Answer(query).ok());
  EXPECT_EQ(server.total_probe_stats().requests_sent, cold_probes);  // Hit.
  server.InvalidateAnswerCache();  // Status changed: the entry is stale.
  ASSERT_TRUE(server.Answer(query).ok());
  EXPECT_EQ(server.total_probe_stats().requests_sent, 2 * cold_probes);
}

TEST_F(ServerTest, AnswerCacheLeavesReservingQueriesCold) {
  // With reservations live (default hold, default `option reserve`), answers
  // mutate and read time-varying state, so the cache must stand aside: the
  // second identical query still probes and still avoids the first pick.
  ServerConfig config;
  config.answer_cache = true;
  CloudTalkServer server = MakeServer(config);
  const std::string query =
      "A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 256M\n";
  auto first = server.Answer(query);
  ASSERT_TRUE(first.ok());
  const int cold_probes = server.total_probe_stats().requests_sent;
  auto second = server.Answer(query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(server.total_probe_stats().requests_sent, 2 * cold_probes);
  EXPECT_NE(second.value().binding.at("A").name, first.value().binding.at("A").name);
}

TEST_F(ServerTest, SymbolicAliasesResolve) {
  CloudTalkServer server = MakeServer();
  const NodeId h1 = topo_.hosts()[1];
  auto reply = server.Answer("A = (host" + std::to_string(h1) + ")\nf1 A -> " + Ip(0) +
                             " size 1M\n");
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_EQ(reply.value().binding.at("A").name, "host" + std::to_string(h1));
}

TEST_F(ServerTest, ParseErrorPropagates) {
  CloudTalkServer server = MakeServer();
  EXPECT_FALSE(server.Answer("A = ()\n").ok());
}

TEST_F(ServerTest, PacketOptionWithoutEstimatorFails) {
  CloudTalkServer server = MakeServer();
  auto reply = server.Answer("option packet\nA = (" + Ip(1) + ")\nf1 A -> " + Ip(0) +
                             " size 1M\n");
  EXPECT_FALSE(reply.ok());
}

TEST_F(ServerTest, BoundAdmissionRejectsImpossibleDeadline) {
  CloudTalkServer server = MakeServer();
  // Feasible on idle (unconstrained) hosts — so lint's E080 stays quiet —
  // but provably impossible on the cluster's real 1 Gbps NICs: the
  // admission bound check must reject before any search runs.
  auto reply = server.Answer("f1 " + Ip(0) + " -> " + Ip(1) + " size 8000G end 1\n");
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.error().message.find("no binding can meet the deadline"),
            std::string::npos)
      << reply.error().ToString();
}

TEST_F(ServerTest, ExhaustiveBindSpanCarriesPassAttribution) {
  // Any CompletionEstimator works as the wired "packet" model here; the
  // test only exercises the exhaustive branch's trace attribution.
  FlowLevelEstimator packet_stand_in;
  ServerConfig config;
  CloudTalkServer server(config, directory_.get(), transport_.get(),
                         [this] { return now_; }, &packet_stand_in);
  auto reply = server.Answer("option packet\nA = (" + Ip(1) + " " + Ip(2) + " " + Ip(3) +
                             ")\nf1 A -> " + Ip(0) + " size 64M\n");
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_TRUE(reply.value().used_exhaustive);
  if (!obs::kObsEnabled) {
    return;
  }
  const obs::Trace& trace = reply.value().trace;
  bool saw_bound = false, saw_bind = false;
  for (const obs::TraceSpan& span : trace.spans) {
    const auto attrs = trace.AttrsOf(span.id);
    const auto has = [&attrs](const std::string& key) {
      return std::any_of(attrs.begin(), attrs.end(),
                         [&key](const std::pair<std::string, std::string>& kv) {
                           return kv.first == key;
                         });
    };
    if (span.name() == "bound") {
      saw_bound = true;
      // The wired estimator vouches for the bound model.
      EXPECT_NE(std::find(attrs.begin(), attrs.end(),
                          std::make_pair(std::string("model"), std::string("1"))),
                attrs.end());
      EXPECT_TRUE(has("lb"));
    } else if (span.name() == "bind") {
      saw_bind = true;
      EXPECT_NE(std::find(attrs.begin(), attrs.end(),
                          std::make_pair(std::string("mode"), std::string("exhaustive"))),
                attrs.end());
      // The branch-and-bound counter and the per-pass attribution (the
      // same numbers `ctopt --report` prints) ride on the bind span.
      EXPECT_TRUE(has("bound_prunes"));
      EXPECT_TRUE(has("opt.O100.seconds"));
      EXPECT_TRUE(has("opt.O500.pruned"));
    }
  }
  EXPECT_TRUE(saw_bound);
  EXPECT_TRUE(saw_bind);
}

TEST_F(ServerTest, WarningOnlyQueryAnsweredWithWarningsAttached) {
  CloudTalkServer server = MakeServer();
  // Self-flow (W020) plus an unused variable (W001, and its scope-analysis
  // twin W100 on the never-probed pool host): suspect but legal.
  auto reply = server.Answer("A = (" + Ip(1) + " " + Ip(2) + ")\nunused = (" + Ip(3) +
                             ")\nf1 A -> A size 1M\n");
  ASSERT_TRUE(reply.ok()) << reply.error().ToString();
  EXPECT_FALSE(reply.value().binding.empty());
  ASSERT_EQ(reply.value().warnings.size(), 3u);
  std::vector<std::string> codes;
  for (const lang::Diagnostic& d : reply.value().warnings) {
    codes.push_back(d.code);
    EXPECT_GT(d.span.line, 0);
  }
  EXPECT_NE(std::find(codes.begin(), codes.end(), "W001"), codes.end());
  EXPECT_NE(std::find(codes.begin(), codes.end(), "W020"), codes.end());
  EXPECT_NE(std::find(codes.begin(), codes.end(), "W100"), codes.end());
}

TEST_F(ServerTest, CleanQueryCarriesNoWarnings) {
  CloudTalkServer server = MakeServer();
  auto reply =
      server.Answer("A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 1M\n");
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.value().warnings.empty());
}

TEST_F(ServerTest, LintErrorRejectsQueryWithPositionAndCode) {
  CloudTalkServer server = MakeServer();
  // E030 size-reference cycle: an error-severity lint finding.
  auto reply = server.Answer("f1 " + Ip(1) + " -> " + Ip(2) + " size sz(f2)\nf2 " + Ip(2) +
                             " -> " + Ip(3) + " size sz(f1)\n");
  ASSERT_FALSE(reply.ok());
  EXPECT_GT(reply.error().line, 0);
  EXPECT_NE(reply.error().message.find("[E030]"), std::string::npos);
}


// ---- Section 7: price quotes ----

TEST_F(ServerTest, QuoteChecksDeadline) {
  CloudTalkServer server = MakeServer();
  // 1 GiB at 1 Gbps takes ~8.6 s: a 20 s deadline holds, a 2 s one cannot.
  const std::string base =
      "A = (" + Ip(1) + ")\nf1 A -> " + Ip(0) + " size 1G";
  auto relaxed = server.Quote(base + " end 20\n");
  ASSERT_TRUE(relaxed.ok()) << relaxed.error().ToString();
  EXPECT_TRUE(relaxed.value().has_deadline);
  EXPECT_DOUBLE_EQ(relaxed.value().deadline, 20.0);
  EXPECT_TRUE(relaxed.value().deadline_met);

  auto tight = server.Quote(base + " end 2\n");
  ASSERT_TRUE(tight.ok());
  EXPECT_TRUE(tight.value().has_deadline);
  EXPECT_FALSE(tight.value().deadline_met);

  auto none = server.Quote(base + "\n");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_deadline);
}

TEST_F(ServerTest, QuotePricesWorkload) {
  CloudTalkServer server = MakeServer();
  const std::string query =
      "A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 1G\n";
  auto quote = server.Quote(query);
  ASSERT_TRUE(quote.ok()) << quote.error().ToString();
  EXPECT_DOUBLE_EQ(quote.value().bytes_moved, 1024.0 * 1024 * 1024);
  EXPECT_EQ(quote.value().endpoints, 2);  // Chosen replica + client.
  EXPECT_GT(quote.value().estimate.makespan, 0);
  EXPECT_GT(quote.value().price, 0);
  // Roughly: 1 GiB * 0.01 + 2 endpoints * ~8.6s * 0.0001.
  EXPECT_NEAR(quote.value().price, 0.01 + 2 * quote.value().estimate.makespan * 0.0001, 1e-9);
}

TEST_F(ServerTest, QuoteDoesNotReserve) {
  CloudTalkServer server = MakeServer();
  const std::string query =
      "A = (" + Ip(1) + " " + Ip(2) + ")\nf1 A -> " + Ip(0) + " size 256M\n";
  auto quote = server.Quote(query);
  ASSERT_TRUE(quote.ok());
  // A real query right after still gets the best endpoint: the quote held
  // nothing.
  auto reply = server.Answer(query);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().binding.at("A").name, quote.value().binding.at("A").name);
}

TEST_F(ServerTest, QuoteScalesWithPricingModel) {
  CloudTalkServer server = MakeServer();
  const std::string query =
      "A = (" + Ip(1) + ")\nf1 A -> " + Ip(0) + " size 1G\n";
  auto cheap = server.Quote(query);
  ASSERT_TRUE(cheap.ok());
  PricingModel expensive;
  expensive.per_gb_moved = 1.0;
  expensive.per_server_second = 0.1;
  server.set_pricing(expensive);
  auto pricier = server.Quote(query);
  ASSERT_TRUE(pricier.ok());
  EXPECT_GT(pricier.value().price, cheap.value().price * 10);
}

}  // namespace
}  // namespace cloudtalk
