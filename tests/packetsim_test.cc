// Tests for the packet-level simulator: TCP correctness, queue behaviour,
// incast, and the packet-level query estimator.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/directory.h"
#include "src/core/packet_estimator.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"
#include "src/packetsim/event_queue.h"
#include "src/packetsim/network.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

using packetsim::EventQueue;
using packetsim::NetworkParams;
using packetsim::PacketNetwork;

SingleSwitchParams Cluster(int hosts, Bps rate = 1 * kGbps) {
  SingleSwitchParams params;
  params.num_hosts = hosts;
  params.link_capacity = rate;
  params.link_delay = 50 * kMicrosecond;
  return params;
}

TEST(EventQueueTest, OrderingAndTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(0.2, [&] { order.push_back(2); });
  queue.Schedule(0.1, [&] { order.push_back(1); });
  queue.Schedule(0.1, [&] { order.push_back(3); });  // FIFO within a tick.
  queue.RunUntil(1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
  EXPECT_DOUBLE_EQ(queue.now(), 1.0);
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue queue;
  queue.RunUntil(5.0);
  bool fired = false;
  queue.Schedule(1.0, [&] { fired = true; });
  queue.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(PacketNetworkTest, SingleFlowApproachesLineRate) {
  const Topology topo = MakeSingleSwitch(Cluster(4));
  PacketNetwork net(&topo, NetworkParams{});
  Seconds done = -1;
  // 10 MB over 1 Gbps ~ 0.084 s at line rate; allow slow-start overhead.
  net.StartTcpFlow(topo.hosts()[0], topo.hosts()[1], 10 * kMB, 0,
                   [&](packetsim::FlowId, Seconds t) { done = t; });
  net.RunUntilIdle();
  ASSERT_GT(done, 0);
  const Seconds ideal = 10 * kMB * 8 / 1e9;
  EXPECT_LT(done, ideal * 1.5);
  EXPECT_GE(done, ideal);
}

TEST(PacketNetworkTest, TwoFlowsShareBottleneck) {
  // Staggered starts (synchronized slow starts can wipe out one flow's
  // initial window and trigger a full min-RTO — that behaviour is the point
  // of the incast tests below, not this one).
  const Topology topo = MakeSingleSwitch(Cluster(4));
  PacketNetwork net(&topo, NetworkParams{});
  Seconds done_a = -1;
  Seconds done_b = -1;
  net.StartTcpFlow(topo.hosts()[0], topo.hosts()[2], 5 * kMB, 0,
                   [&](packetsim::FlowId, Seconds t) { done_a = t; });
  net.StartTcpFlow(topo.hosts()[1], topo.hosts()[2], 5 * kMB, 0.01,
                   [&](packetsim::FlowId, Seconds t) { done_b = t; });
  net.RunUntilIdle();
  ASSERT_GT(done_a, 0);
  ASSERT_GT(done_b, 0);
  // The pair completes within ~2x of the shared-bottleneck ideal, plus one
  // min-RTO: a flow whose early window (< 3 packets) is lost cannot fast-
  // retransmit and must wait out the 200 ms timer — real TCP behaviour.
  const Seconds ideal = 2 * 5 * kMB * 8 / 1e9;
  EXPECT_LT(std::max(done_a, done_b), ideal * 2.0 + NetworkParams{}.min_rto);
  // And the bottleneck stays busy: neither flow finishes before the solo
  // time, and the second finisher is not (much) later than serial service.
  EXPECT_GE(std::max(done_a, done_b), 5 * kMB * 8 / 1e9);
}

TEST(PacketNetworkTest, DatagramDelivery) {
  const Topology topo = MakeSingleSwitch(Cluster(4));
  PacketNetwork net(&topo, NetworkParams{});
  Seconds delivered = -1;
  net.SendDatagram(topo.hosts()[0], topo.hosts()[1], 100, 0.5,
                   [&](Seconds t) { delivered = t; });
  net.RunUntilIdle();
  // Two hops of 50us delay + tiny serialization.
  EXPECT_GT(delivered, 0.5 + 100e-6);
  EXPECT_LT(delivered, 0.5 + 150e-6 + 2 * 100 * 8 / 1e9 + 1e-6);
}

TEST(PacketNetworkTest, IncastCausesTimeouts) {
  // Many synchronized senders, one receiver, shallow buffers: the flows
  // overflow the receiver's port and recover only via RTO — the Figure 11
  // phenomenon.
  const Topology topo = MakeSingleSwitch(Cluster(65));
  NetworkParams params;
  params.queue_packets = 50;
  PacketNetwork net(&topo, params);
  int completed = 0;
  Seconds last_done = 0;
  const int senders = 64;
  for (int i = 1; i <= senders; ++i) {
    net.StartTcpFlow(topo.hosts()[i], topo.hosts()[0], 64 * kKB, 0,
                     [&](packetsim::FlowId, Seconds t) {
                       ++completed;
                       last_done = std::max(last_done, t);
                     });
  }
  net.RunUntilIdle();
  EXPECT_EQ(completed, senders);
  EXPECT_GT(net.total_drops(), 0);
  EXPECT_GT(net.total_timeouts(), 0);
  // Ideal (no loss) would be 64*64KB*8/1e9 = 33 ms; incast blows through
  // at least one 200 ms RTO.
  EXPECT_GT(last_done, 0.2);
}

TEST(PacketNetworkTest, DeeperBuffersReduceIncast) {
  const int senders = 64;
  auto run = [&](int buffer_packets) {
    const Topology topo = MakeSingleSwitch(Cluster(senders + 1));
    NetworkParams params;
    params.queue_packets = buffer_packets;
    PacketNetwork net(&topo, params);
    Seconds last_done = 0;
    for (int i = 1; i <= senders; ++i) {
      net.StartTcpFlow(topo.hosts()[i], topo.hosts()[0], 64 * kKB, 0,
                       [&](packetsim::FlowId, Seconds t) { last_done = std::max(last_done, t); });
    }
    net.RunUntilIdle();
    return last_done;
  };
  // "Another way to handle the web-search query is ... racks with switches
  // that have larger per-port buffers" (Section 5.4).
  EXPECT_LT(run(4096), run(50));
}

TEST(PacketNetworkTest, RttEstimatorConvergesNoLoss) {
  const Topology topo = MakeSingleSwitch(Cluster(3));
  PacketNetwork net(&topo, NetworkParams{});
  Seconds done = -1;
  net.StartTcpFlow(topo.hosts()[0], topo.hosts()[1], 1 * kMB, 0,
                   [&](packetsim::FlowId, Seconds t) { done = t; });
  net.RunUntilIdle();
  EXPECT_GT(done, 0);
  EXPECT_EQ(net.total_timeouts(), 0);  // No loss: no spurious RTOs.
}

TEST(PacketNetworkTest, CrossRackFlowsTraverseVl2) {
  Vl2Params params;
  params.num_racks = 3;
  params.hosts_per_rack = 4;
  const Topology topo = MakeVl2(params);
  PacketNetwork net(&topo, NetworkParams{});
  Seconds done = -1;
  net.StartTcpFlow(topo.hosts()[0], topo.hosts()[4], 1 * kMB, 0,
                   [&](packetsim::FlowId, Seconds t) { done = t; });
  net.RunUntilIdle();
  EXPECT_GT(done, 0);
}

TEST(PacketNetworkTest, NicCapClampsThroughput) {
  // EC2 profile: 10G fabric, 500 Mbps instance cap; the transfer must pace
  // at the cap, not the fabric rate.
  Ec2Params params;
  params.num_instances = 4;
  const Topology topo = MakeEc2(params);
  PacketNetwork net(&topo, NetworkParams{});
  Seconds done = -1;
  net.StartTcpFlow(topo.hosts()[0], topo.hosts()[1], 10 * kMB, 0,
                   [&](packetsim::FlowId, Seconds t) { done = t; });
  net.RunUntilIdle();
  const Seconds ideal_at_cap = 10 * kMB * 8 / 500e6;
  EXPECT_GE(done, ideal_at_cap);
  EXPECT_LT(done, ideal_at_cap * 1.5);
}


// ---- Multipath (MPTCP-lite) ----

TEST(MultipathTest, SpreadsOverEcmpPaths) {
  // Oversubscribed two-rack fabric: 8 x 1 Gbps hosts per rack, 4 x 2 Gbps
  // uplinks. Eight synchronized elephants rack0 -> rack1: single-path ECMP
  // collides some of them onto the same uplink; 4-way striping spreads
  // every flow over every path.
  auto run = [&](bool multipath, uint64_t seed) {
    Vl2Params vp;
    vp.num_racks = 2;
    vp.hosts_per_rack = 8;
    vp.num_aggs = 4;
    vp.host_link = 1 * kGbps;
    vp.tor_uplink = 2 * kGbps;
    const Topology topo = MakeVl2(vp);
    NetworkParams params;
    params.seed = seed;
    PacketNetwork net(&topo, params);
    Seconds last = 0;
    for (int i = 0; i < 8; ++i) {
      auto cb = [&last](packetsim::FlowId, Seconds t) { last = std::max(last, t); };
      // Long transfers: elephants, where path collisions (not RTO quanta)
      // dominate completion time.
      if (multipath) {
        net.StartMultipathFlow(topo.hosts()[i], topo.hosts()[8 + i], 100 * kMB, 4, 0, cb);
      } else {
        net.StartTcpFlow(topo.hosts()[i], topo.hosts()[8 + i], 100 * kMB, 0, cb);
      }
    }
    net.RunUntilIdle(120);
    return last;
  };
  // Average over a few seeds: single-path suffers collisions somewhere.
  double single = 0;
  double multi = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    single += run(false, seed);
    multi += run(true, seed);
  }
  EXPECT_LT(multi, single);
  // Multipath should approach the 100 MB / 1 Gbps per-host ideal.
  EXPECT_LT(multi / 3, 2.0 * (100 * kMB * 8 / 1e9));
}

TEST(MultipathTest, SingleSubflowEqualsPlainTcp) {
  const Topology topo = MakeSingleSwitch(Cluster(3));
  Seconds plain = -1;
  Seconds striped = -1;
  {
    PacketNetwork net(&topo, NetworkParams{});
    net.StartTcpFlow(topo.hosts()[0], topo.hosts()[1], 2 * kMB, 0,
                     [&](packetsim::FlowId, Seconds t) { plain = t; });
    net.RunUntilIdle();
  }
  {
    PacketNetwork net(&topo, NetworkParams{});
    net.StartMultipathFlow(topo.hosts()[0], topo.hosts()[1], 2 * kMB, 1, 0,
                           [&](packetsim::FlowId, Seconds t) { striped = t; });
    net.RunUntilIdle();
  }
  EXPECT_DOUBLE_EQ(plain, striped);
}

TEST(MultipathTest, ByteConservationAcrossStripes) {
  // 10 MB over 3 subflows: all bytes arrive (stripe rounding covered).
  const Topology topo = MakeSingleSwitch(Cluster(3));
  PacketNetwork net(&topo, NetworkParams{});
  Seconds done = -1;
  net.StartMultipathFlow(topo.hosts()[0], topo.hosts()[1], 10 * kMB + 7, 3, 0,
                         [&](packetsim::FlowId, Seconds t) { done = t; });
  net.RunUntilIdle();
  EXPECT_GT(done, 0);
}

// ---- Packet-level estimator ----

TEST(PacketEstimatorTest, ScatterGatherDependencies) {
  // Two leaves -> aggregator -> frontend. The aggregator flow starts only
  // after its leaf flow completes (transfer reference).
  const Topology topo = MakeSingleSwitch(Cluster(6));
  TopologyDirectory directory(&topo);
  directory.AddAlias("leaf1", topo.hosts()[0]);
  directory.AddAlias("leaf2", topo.hosts()[1]);
  directory.AddAlias("agg", topo.hosts()[2]);
  directory.AddAlias("frontend", topo.hosts()[3]);
  auto query = lang::Parse(
      "f1 leaf1 -> agg size 10KB\n"
      "f2 leaf2 -> agg size 10KB\n"
      "f3 agg -> frontend size 20KB transfer t(f1) + t(f2)\n");
  ASSERT_TRUE(query.ok()) << query.error().ToString();
  auto compiled = lang::CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled.value().flows()[2].transfer_parents.size(), 2u);

  PacketLevelEstimator estimator(&topo, &directory);
  auto estimate = estimator.EstimateQuery(compiled.value(), {}, {});
  ASSERT_TRUE(estimate.ok()) << estimate.error().ToString();
  // Leaf flows ~ (10KB at 1Gbps) + RTTs; the forward leg adds more. Just
  // check ordering: makespan exceeds a single 10KB transfer.
  EXPECT_GT(estimate.value().makespan, 10 * kKB * 8 / 1e9);
  EXPECT_LT(estimate.value().makespan, 0.1);
}

TEST(PacketEstimatorTest, PlacementRankingFavorsSpreadAggregators) {
  // 2 racks of leaves; an aggregator placed in-rack with its leaves beats
  // sharing the frontend's rack uplink for everything.
  Vl2Params params;
  params.num_racks = 3;
  params.hosts_per_rack = 10;
  params.host_link = 1 * kGbps;
  const Topology topo = MakeVl2(params);
  TopologyDirectory directory(&topo);
  // Frontend in rack 2.
  directory.AddAlias("frontend", topo.hosts()[25]);
  std::string query_text;
  // 10 leaves in rack 0 all answering through one aggregator.
  for (int i = 0; i < 10; ++i) {
    const std::string leaf = "leaf" + std::to_string(i);
    directory.AddAlias(leaf, topo.hosts()[i]);
    query_text += "fa" + std::to_string(i) + " " + leaf + " -> AGG size 10KB\n";
  }
  query_text += "fagg AGG -> frontend size 100KB transfer t(fa0)\n";
  // Candidates: in rack 0 (with the leaves) vs in rack 2 (frontend's rack).
  directory.AddAlias("cand_same_rack", topo.hosts()[5]);
  directory.AddAlias("cand_far", topo.hosts()[26]);
  auto run = [&](const std::string& candidate) {
    auto query = lang::Parse("AGG = (" + candidate + ")\n" + query_text);
    EXPECT_TRUE(query.ok());
    auto compiled = lang::CompiledQuery::Compile(query.value());
    EXPECT_TRUE(compiled.ok());
    PacketLevelEstimator estimator(&topo, &directory);
    Binding binding{{"AGG", lang::Endpoint::Address(candidate)}};
    auto estimate = estimator.EstimateQuery(compiled.value(), binding, {});
    EXPECT_TRUE(estimate.ok());
    return estimate.value().makespan;
  };
  // Both placements must at least produce sane numbers.
  const Seconds same_rack = run("cand_same_rack");
  const Seconds far = run("cand_far");
  EXPECT_GT(same_rack, 0);
  EXPECT_GT(far, 0);
}


TEST(PacketEstimatorTest, StartTimesDelayFlows) {
  const Topology topo = MakeSingleSwitch(Cluster(3));
  TopologyDirectory directory(&topo);
  directory.AddAlias("a", topo.hosts()[0]);
  directory.AddAlias("b", topo.hosts()[1]);
  auto query = lang::Parse("f1 a -> b size 100KB start 2\n");
  ASSERT_TRUE(query.ok());
  auto compiled = lang::CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  PacketLevelEstimator estimator(&topo, &directory);
  auto estimate = estimator.EstimateQuery(compiled.value(), {}, {});
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate.value().makespan, 2.0);
  EXPECT_LT(estimate.value().makespan, 2.1);
}

TEST(PacketNetworkTest, DatagramDroppedOnFullQueueIsSilent) {
  // Saturate a 50-packet switch queue with a TCP elephant, then fire many
  // datagrams through it: some are dropped, none crash, no callback fires
  // for the lost ones.
  const Topology topo = MakeSingleSwitch(Cluster(4));
  NetworkParams params;
  params.queue_packets = 4;  // Tiny buffers to force drops.
  PacketNetwork net(&topo, params);
  net.StartTcpFlow(topo.hosts()[0], topo.hosts()[1], 5 * kMB, 0);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    net.SendDatagram(topo.hosts()[2], topo.hosts()[1], 1400, 0.001,
                     [&](Seconds) { ++delivered; });
  }
  net.RunUntilIdle(60);
  EXPECT_GT(net.total_drops(), 0);
  EXPECT_LT(delivered, 200);
}

TEST(PacketEstimatorTest, RejectsUnknownEndpoints) {
  const Topology topo = MakeSingleSwitch(Cluster(3));
  TopologyDirectory directory(&topo);
  auto query = lang::Parse("f1 0.0.0.0 -> " + topo.IpOf(topo.hosts()[0]) + " size 1M\n");
  ASSERT_TRUE(query.ok());
  auto compiled = lang::CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  PacketLevelEstimator estimator(&topo, &directory);
  EXPECT_FALSE(estimator.EstimateQuery(compiled.value(), {}, {}).ok());
}

TEST(PacketEstimatorTest, DiskFlowsAreFree) {
  const Topology topo = MakeSingleSwitch(Cluster(3));
  TopologyDirectory directory(&topo);
  directory.AddAlias("a", topo.hosts()[0]);
  directory.AddAlias("b", topo.hosts()[1]);
  auto query = lang::Parse(
      "f1 a -> b size 100KB\n"
      "f2 b -> disk size 100KB transfer t(f1)\n");
  ASSERT_TRUE(query.ok());
  auto compiled = lang::CompiledQuery::Compile(query.value());
  ASSERT_TRUE(compiled.ok());
  PacketLevelEstimator estimator(&topo, &directory);
  auto estimate = estimator.EstimateQuery(compiled.value(), {}, {});
  ASSERT_TRUE(estimate.ok()) << estimate.error().ToString();
  EXPECT_GT(estimate.value().makespan, 0);
}


// ---- PFC (priority flow control) ----

TEST(PfcTest, IncastLosslessAndFast) {
  // Section 2: PFC "prevents loss and completely eliminates incast-related
  // problems" for scatter-gather traffic.
  const Topology topo = MakeSingleSwitch(Cluster(65));
  NetworkParams params;
  params.queue_packets = 50;
  params.enable_pfc = true;
  PacketNetwork net(&topo, params);
  int completed = 0;
  Seconds last_done = 0;
  for (int i = 1; i <= 64; ++i) {
    net.StartTcpFlow(topo.hosts()[i], topo.hosts()[0], 64 * kKB, 0,
                     [&](packetsim::FlowId, Seconds t) {
                       ++completed;
                       last_done = std::max(last_done, t);
                     });
  }
  net.RunUntilIdle();
  EXPECT_EQ(completed, 64);
  EXPECT_EQ(net.total_drops(), 0);
  EXPECT_EQ(net.total_timeouts(), 0);
  EXPECT_GT(net.total_pauses(), 0);
  // Near the serialization bound (64 x 64 KB at 1 Gbps = 33.5 ms), far from
  // the >200 ms RTO-bound completion without PFC.
  EXPECT_LT(last_done, 0.1);
}

TEST(PfcTest, ElephantSuffersHeadOfLineBlocking) {
  // Section 2: PFC "reduces throughput for elephant flows". An elephant
  // sharing fabric with an incast-prone scatter-gather completes later
  // under PFC than with plain drop-tail.
  auto run = [&](bool pfc) {
    Vl2Params vp;
    vp.num_racks = 3;
    vp.hosts_per_rack = 40;
    vp.host_link = 1 * kGbps;
    vp.tor_uplink = 2 * kGbps;  // Oversubscribed: HOL blocking has teeth.
    const Topology topo = MakeVl2(vp);
    NetworkParams params;
    params.enable_pfc = pfc;
    PacketNetwork net(&topo, params);
    // Elephant: rack 1 host -> rack 0 host A (crosses rack 0's downlink).
    Seconds elephant_done = -1;
    net.StartTcpFlow(topo.hosts()[40], topo.hosts()[0], 40 * kMB, 0,
                     [&](packetsim::FlowId, Seconds t) { elephant_done = t; });
    // Incast: 36 rack-1/2 hosts -> rack 0 host B, repeatedly.
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 36; ++i) {
        net.StartTcpFlow(topo.hosts()[41 + i], topo.hosts()[1], 30 * kKB, round * 0.05,
                         nullptr);
      }
    }
    net.RunUntilIdle(120);
    return elephant_done;
  };
  const Seconds with_pfc = run(true);
  const Seconds without_pfc = run(false);
  ASSERT_GT(with_pfc, 0);
  ASSERT_GT(without_pfc, 0);
  EXPECT_GT(with_pfc, without_pfc);
}

TEST(PfcTest, NormalTrafficUnaffected) {
  // A single uncontended flow behaves identically with PFC on.
  const Topology topo = MakeSingleSwitch(Cluster(4));
  NetworkParams pfc_params;
  pfc_params.enable_pfc = true;
  Seconds with_pfc = -1;
  Seconds without_pfc = -1;
  {
    PacketNetwork net(&topo, pfc_params);
    net.StartTcpFlow(topo.hosts()[0], topo.hosts()[1], 5 * kMB, 0,
                     [&](packetsim::FlowId, Seconds t) { with_pfc = t; });
    net.RunUntilIdle();
  }
  {
    PacketNetwork net(&topo, NetworkParams{});
    net.StartTcpFlow(topo.hosts()[0], topo.hosts()[1], 5 * kMB, 0,
                     [&](packetsim::FlowId, Seconds t) { without_pfc = t; });
    net.RunUntilIdle();
  }
  EXPECT_DOUBLE_EQ(with_pfc, without_pfc);
}

}  // namespace
}  // namespace cloudtalk
