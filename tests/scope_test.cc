// Tests for the static footprint & effect analysis (src/lang/scope) and
// its server consumers: effect inference, active/inert classification,
// the reservation-conflict predicate, targeted probing identity on a live
// simulated cluster, partial-fleet sampling, and the concurrent admission
// gate (DESIGN.md "Footprint & effect analysis").
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/harness/cluster.h"
#include "src/lang/parser.h"
#include "src/lang/scope.h"
#include "src/status/sampling.h"
#include "src/topology/topology.h"

using namespace cloudtalk;

namespace {

lang::ScopeEffects EffectsOf(const std::string& text) {
  const Result<lang::Query> query = lang::Parse(text);
  EXPECT_TRUE(query.ok()) << (query.ok() ? "" : query.error().ToString());
  return lang::AnalyzeEffects(query.value());
}

lang::ScopeAnalysis MustAnalyze(const std::string& text) {
  const Result<lang::Query> query = lang::Parse(text);
  EXPECT_TRUE(query.ok()) << (query.ok() ? "" : query.error().ToString());
  const Result<lang::CompiledQuery> compiled =
      lang::CompiledQuery::Compile(query.value());
  EXPECT_TRUE(compiled.ok()) << (compiled.ok() ? "" : compiled.error().ToString());
  return lang::AnalyzeScope(compiled.value());
}

const lang::ScopeHost* FindHost(const lang::ScopeAnalysis& scope,
                                const std::string& address) {
  for (const lang::ScopeHost& host : scope.footprint) {
    if (host.address == address) {
      return &host;
    }
  }
  return nullptr;
}

// ---- Effect inference (AST only, no compilation) ----

TEST(ScopeEffectsTest, DefaultQueryReservesAndSamples) {
  const lang::ScopeEffects effects = EffectsOf(
      "A = (10.0.0.1 10.0.0.2)\nf1 A -> 10.0.0.3 size 1M\n");
  EXPECT_TRUE(effects.reserves);
  EXPECT_TRUE(effects.samples);
  EXPECT_FALSE(effects.pure);
  EXPECT_FALSE(effects.uses_packet_engine);
  EXPECT_EQ(effects.max_pool_size, 2);
  EXPECT_EQ(lang::EffectsName(effects), "reserve,sample");
}

TEST(ScopeEffectsTest, NoreserveIsPure) {
  const lang::ScopeEffects effects = EffectsOf(
      "option noreserve\nA = (10.0.0.1)\nf1 A -> 10.0.0.3 size 1M\n");
  EXPECT_FALSE(effects.reserves);
  EXPECT_TRUE(effects.pure);
  EXPECT_EQ(lang::EffectsName(effects), "sample");
}

TEST(ScopeEffectsTest, StaticNoreserveHasNoEffects) {
  const lang::ScopeEffects effects = EffectsOf(
      "option static\noption noreserve\nA = (10.0.0.1)\nf1 A -> "
      "10.0.0.3 size 1M\n");
  EXPECT_FALSE(effects.reserves);
  EXPECT_FALSE(effects.samples);
  EXPECT_TRUE(effects.pure);
  EXPECT_EQ(lang::EffectsName(effects), "pure");
}

TEST(ScopeEffectsTest, PacketEngineNeverReserves) {
  // The exhaustive packet path ignores the reservation table, so `option
  // packet` cancels the reserve effect even without `option noreserve`.
  const lang::ScopeEffects effects = EffectsOf(
      "option packet\nA = (10.0.0.1)\nf1 A -> 10.0.0.3 size 1M\n");
  EXPECT_TRUE(effects.uses_packet_engine);
  EXPECT_FALSE(effects.reserves);
  EXPECT_TRUE(effects.pure);
}

// ---- Footprint classification ----

TEST(ScopeFootprintTest, InertPoolHostsAreExcluded) {
  const lang::ScopeAnalysis scope = MustAnalyze(
      "A = (10.0.0.1 10.0.0.2)\nidle = (10.0.0.8 10.0.0.9)\n"
      "f1 A -> 10.0.0.3 size 1M\n");
  EXPECT_TRUE(scope.InFootprint("10.0.0.1"));
  EXPECT_TRUE(scope.InFootprint("10.0.0.2"));
  EXPECT_TRUE(scope.InFootprint("10.0.0.3"));
  EXPECT_FALSE(scope.InFootprint("10.0.0.8"));
  EXPECT_FALSE(scope.InFootprint("10.0.0.9"));
  ASSERT_EQ(scope.excluded.size(), 2u);  // Sorted by address.
  EXPECT_EQ(scope.excluded[0], "10.0.0.8");
  EXPECT_EQ(scope.excluded[1], "10.0.0.9");
  ASSERT_EQ(scope.inert_variables.size(), 1u);
  EXPECT_EQ(scope.inert_variables[0], "idle");
}

TEST(ScopeFootprintTest, CandidatesCoverInertPoolsForReservationVisibility) {
  // The heuristic's reservation filter steers every variable's binding —
  // inert ones included — away from reserved hosts, and any bound endpoint
  // gets reserved. So the admission gate's candidate set must cover inert
  // pools even though the status footprint never does.
  const lang::ScopeAnalysis scope = MustAnalyze(
      "A = (10.0.0.1)\nidle = (10.0.0.8)\nf1 A -> 10.0.0.3 size 1M\n");
  EXPECT_EQ(scope.candidates.count("10.0.0.1"), 1u);
  EXPECT_EQ(scope.candidates.count("10.0.0.8"), 1u);
  EXPECT_EQ(scope.candidates.count("10.0.0.3"), 0u);  // Literals never reserved.
  EXPECT_FALSE(scope.InFootprint("10.0.0.8"));
}

TEST(ScopeFootprintTest, FieldBitsFollowCommunicationPattern) {
  const lang::ScopeAnalysis scope = MustAnalyze(
      "A = (10.0.0.1)\nB = (10.0.0.2)\nB requires cpu 2\n"
      "f1 A -> B size 1M\nf2 B -> disk size 1M\n"
      "f3 10.0.0.5 -> 10.0.0.6 size 1M\n");
  const lang::ScopeHost* a = FindHost(scope, "10.0.0.1");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->candidate);
  EXPECT_FALSE(a->endpoint);
  EXPECT_NE(a->fields & lang::kScopeFieldNetOut, 0);  // Source of f1.
  EXPECT_EQ(a->fields & lang::kScopeFieldDisk, 0);
  EXPECT_EQ(a->fields & lang::kScopeFieldCpu, 0);

  const lang::ScopeHost* b = FindHost(scope, "10.0.0.2");
  ASSERT_NE(b, nullptr);
  EXPECT_NE(b->fields & lang::kScopeFieldNetIn, 0);  // Sink of f1.
  EXPECT_NE(b->fields & lang::kScopeFieldDisk, 0);   // Writer of f2.
  EXPECT_NE(b->fields & lang::kScopeFieldCpu, 0);    // Carries a requirement.

  const lang::ScopeHost* src = FindHost(scope, "10.0.0.5");
  ASSERT_NE(src, nullptr);
  EXPECT_TRUE(src->endpoint);
  EXPECT_FALSE(src->candidate);
  EXPECT_EQ(lang::ScopeFieldNames(src->fields), "net-out");
  const lang::ScopeHost* dst = FindHost(scope, "10.0.0.6");
  ASSERT_NE(dst, nullptr);
  EXPECT_EQ(lang::ScopeFieldNames(dst->fields), "net-in");
}

TEST(ScopeFootprintTest, RequirementAloneMakesVariableActive) {
  // A variable with no flows but a cpu/mem requirement still reads status
  // (the heuristic's requirement filter), so its pool stays in scope.
  const lang::ScopeAnalysis scope = MustAnalyze(
      "A = (10.0.0.1)\nW = (10.0.0.7)\nW requires cpu 4\n"
      "f1 A -> 10.0.0.3 size 1M\n");
  EXPECT_TRUE(scope.InFootprint("10.0.0.7"));
  EXPECT_TRUE(scope.inert_variables.empty());
  const lang::ScopeHost* w = FindHost(scope, "10.0.0.7");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(lang::ScopeFieldNames(w->fields), "cpu");
}

// ---- Reservation-conflict predicate ----

TEST(ScopeConflictTest, DisjointReserversCommute) {
  const lang::ScopeAnalysis a =
      MustAnalyze("A = (10.0.0.1 10.0.0.2)\nf1 A -> 10.0.0.3 size 1M\n");
  const lang::ScopeAnalysis b =
      MustAnalyze("B = (10.0.0.4 10.0.0.5)\nf1 B -> 10.0.0.6 size 1M\n");
  EXPECT_FALSE(lang::ReservationConflict(a, b));
}

TEST(ScopeConflictTest, OverlappingReserversConflict) {
  const lang::ScopeAnalysis a =
      MustAnalyze("A = (10.0.0.1 10.0.0.2)\nf1 A -> 10.0.0.3 size 1M\n");
  const lang::ScopeAnalysis b =
      MustAnalyze("B = (10.0.0.2 10.0.0.4)\nf1 B -> 10.0.0.6 size 1M\n");
  EXPECT_TRUE(lang::ReservationConflict(a, b));
  EXPECT_TRUE(lang::ReservationConflict(b, a));
}

TEST(ScopeConflictTest, TwoReadersNeverConflict) {
  const lang::ScopeAnalysis a = MustAnalyze(
      "option noreserve\nA = (10.0.0.1)\nf1 A -> 10.0.0.3 size 1M\n");
  const lang::ScopeAnalysis b = MustAnalyze(
      "option noreserve\nB = (10.0.0.1)\nf1 B -> 10.0.0.6 size 1M\n");
  EXPECT_FALSE(lang::ReservationConflict(a, b));
}

TEST(ScopeConflictTest, InertPoolOverlapStillConflicts) {
  // The shared host appears only in inert pools, but both queries can bind
  // (and reserve) it — the conflict check must see through inertness.
  const lang::ScopeAnalysis a = MustAnalyze(
      "A = (10.0.0.1)\ncat = (10.0.0.9)\nf1 A -> 10.0.0.3 size 1M\n");
  const lang::ScopeAnalysis b = MustAnalyze(
      "B = (10.0.0.5)\ncat = (10.0.0.9)\nf1 B -> 10.0.0.6 size 1M\n");
  EXPECT_TRUE(lang::ReservationConflict(a, b));
}

TEST(ScopeConflictTest, SharedLiteralEndpointDoesNotConflict) {
  // Literal endpoints are never reserved (only variable bindings are), so a
  // shared sink is not a reservation conflict.
  const lang::ScopeAnalysis a =
      MustAnalyze("A = (10.0.0.1)\nf1 A -> 10.0.0.3 size 1M\n");
  const lang::ScopeAnalysis b =
      MustAnalyze("B = (10.0.0.5)\nf1 B -> 10.0.0.3 size 1M\n");
  EXPECT_FALSE(lang::ReservationConflict(a, b));
}

// ---- Targeted probing on a live cluster ----

Cluster MakeCluster(bool pruning, int hosts, uint64_t seed, Seconds hold,
                    int slots = 2, int sample_threshold = 100) {
  SingleSwitchParams params;
  params.num_hosts = hosts;
  params.host_caps.nic_up = params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.seed = seed;
  options.server.seed = seed;
  options.server.eval_threads = 1;
  options.server.reservation_hold = hold;
  options.server.scope_probe_pruning = pruning;
  options.server.admission_slots = slots;
  options.server.sample_threshold = sample_threshold;
  Cluster cluster(MakeSingleSwitch(params), options);
  cluster.StartStatusSweep();
  return cluster;
}

// A footprint-sparse query: a small active slice plus a fleet-wide inert
// pool that inflates the mentioned set without widening the footprint.
std::string SparseQuery(const Cluster& cluster, int active_hosts) {
  Cluster& c = const_cast<Cluster&>(cluster);
  std::string query = "A = (";
  for (int i = 1; i <= active_hosts; ++i) {
    query += (i > 1 ? " " : "") + c.ip(i);
  }
  query += ")\ncatalog = (";
  for (int i = 0; i < c.num_hosts(); ++i) {
    query += (i > 0 ? " " : "") + c.ip(i);
  }
  query += ")\nf1 A -> " + c.ip(0) + " size 64M\n";
  return query;
}

TEST(ScopeClusterTest, FootprintPruningByteIdenticalUnderLoad) {
  Cluster pruned = MakeCluster(/*pruning=*/true, 16, /*seed=*/7, /*hold=*/0);
  Cluster full = MakeCluster(/*pruning=*/false, 16, /*seed=*/7, /*hold=*/0);
  for (Cluster* c : {&pruned, &full}) {
    c->AddBackgroundPair(c->host(2), c->host(5), 600 * kMbps);
    c->AddBackgroundPair(c->host(9), c->host(12), 800 * kMbps);
    c->MeasureNow();
  }
  const std::string query = SparseQuery(pruned, 4);
  const Result<QueryReply> a = pruned.cloudtalk().Answer(query);
  const Result<QueryReply> b = full.cloudtalk().Answer(query);
  ASSERT_TRUE(a.ok()) << a.error().ToString();
  ASSERT_TRUE(b.ok()) << b.error().ToString();
  EXPECT_EQ(a.value().binding.at("A").name, b.value().binding.at("A").name);
  EXPECT_EQ(a.value().binding.at("catalog").name, b.value().binding.at("catalog").name);
  EXPECT_EQ(a.value().estimate.makespan, b.value().estimate.makespan);
  ASSERT_EQ(a.value().scores.size(), b.value().scores.size());
  for (size_t i = 0; i < a.value().scores.size(); ++i) {
    EXPECT_EQ(a.value().scores[i].second, b.value().scores[i].second);
  }
  // Footprint: 4 candidates + 1 literal; full probing covers the fleet.
  EXPECT_EQ(a.value().probe_stats.requests_sent, 5);
  EXPECT_EQ(b.value().probe_stats.requests_sent, 16);
}

TEST(ScopeClusterTest, StaticPathSkipsExcludedHosts) {
  Cluster pruned = MakeCluster(/*pruning=*/true, 16, /*seed=*/3, /*hold=*/0);
  Cluster full = MakeCluster(/*pruning=*/false, 16, /*seed=*/3, /*hold=*/0);
  pruned.MeasureNow();
  full.MeasureNow();
  const std::string query = "option static\n" + SparseQuery(pruned, 3);
  const Result<QueryReply> a = pruned.cloudtalk().Answer(query);
  const Result<QueryReply> b = full.cloudtalk().Answer(query);
  ASSERT_TRUE(a.ok()) << a.error().ToString();
  ASSERT_TRUE(b.ok()) << b.error().ToString();
  EXPECT_EQ(a.value().probe_stats.requests_sent, 0);  // Static: no probes.
  EXPECT_EQ(a.value().binding.at("A").name, b.value().binding.at("A").name);
  EXPECT_EQ(a.value().estimate.makespan, b.value().estimate.makespan);
}

// ---- Partial-fleet sampling (src/status/sampling) ----

TEST(SamplingScopeTest, RequiredSamplesEdges) {
  // One idle server wanted, everything idle: a single probe suffices.
  EXPECT_EQ(RequiredSamples(1, 1.0, 0.99), 1);
  // Nothing is ever idle: the search saturates at max_n.
  EXPECT_EQ(RequiredSamples(1, 0.0, 0.9, /*max_n=*/64), 64);
  // More idle servers wanted can never need fewer probes.
  EXPECT_GE(RequiredSamples(5, 0.2, 0.9), RequiredSamples(1, 0.2, 0.9));
  // Certain event: at least zero successes always happens.
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0.5, 0), 1.0);
}

TEST(SamplingScopeTest, OversizedInertPoolKeepsSamplingDrawsIdentical) {
  // Both pools exceed the sample threshold, so both consume RNG draws when
  // sampled — including the inert one. Pruning filters the probe *targets*
  // only, never the draws, so the sampled answer stays byte-identical.
  Cluster pruned =
      MakeCluster(true, 20, /*seed=*/11, /*hold=*/0, /*slots=*/2, /*sample_threshold=*/4);
  Cluster full =
      MakeCluster(false, 20, /*seed=*/11, /*hold=*/0, /*slots=*/2, /*sample_threshold=*/4);
  for (Cluster* c : {&pruned, &full}) {
    c->AddBackgroundPair(c->host(3), c->host(6), 700 * kMbps);
    c->MeasureNow();
  }
  const std::string query = SparseQuery(pruned, 8);  // Active pool of 8 > 4.
  const Result<QueryReply> a = pruned.cloudtalk().Answer(query);
  const Result<QueryReply> b = full.cloudtalk().Answer(query);
  ASSERT_TRUE(a.ok()) << a.error().ToString();
  ASSERT_TRUE(b.ok()) << b.error().ToString();
  EXPECT_EQ(a.value().binding.at("A").name, b.value().binding.at("A").name);
  EXPECT_EQ(a.value().binding.at("catalog").name, b.value().binding.at("catalog").name);
  EXPECT_EQ(a.value().estimate.makespan, b.value().estimate.makespan);
  EXPECT_LT(a.value().probe_stats.requests_sent, b.value().probe_stats.requests_sent);
}

// ---- Concurrent admission gate ----

// Admission-gate tests use `option static` so concurrent answers never
// touch the simulated probe transport (which is single-threaded); the
// static path still runs the full bind + reserve pipeline.
TEST(ScopeAdmissionTest, ConflictingReserversSerializeToDistinctPicks) {
  Cluster cluster = MakeCluster(true, 8, /*seed=*/1, /*hold=*/60.0);
  cluster.MeasureNow();
  std::string query = "option static\nA = (";
  for (int i = 1; i <= 4; ++i) {
    query += (i > 1 ? " " : "") + cluster.ip(i);
  }
  query += ")\nf1 A -> " + cluster.ip(0) + " size 1M\n";

  std::vector<std::string> picks(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cluster, &query, &picks, t] {
      const Result<QueryReply> reply = cluster.cloudtalk().Answer(query);
      if (reply.ok()) {
        picks[t] = reply.value().binding.at("A").name;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // The gate serializes conflicting reservers, so each query observes every
  // earlier reservation and steers to a fresh host: four distinct picks.
  // Without serialization two queries could race to the same best host.
  const std::set<std::string> distinct(picks.begin(), picks.end());
  EXPECT_EQ(distinct.size(), 4u);
  for (const std::string& pick : picks) {
    EXPECT_FALSE(pick.empty());
  }
}

TEST(ScopeAdmissionTest, DisjointReserversBothComplete) {
  Cluster cluster = MakeCluster(true, 16, /*seed=*/1, /*hold=*/60.0);
  cluster.MeasureNow();
  const std::string left = "option static\nA = (" + cluster.ip(1) + " " + cluster.ip(2) +
                           ")\nf1 A -> " + cluster.ip(0) + " size 1M\n";
  const std::string right = "option static\nB = (" + cluster.ip(9) + " " + cluster.ip(10) +
                            ")\nf1 B -> " + cluster.ip(8) + " size 1M\n";
  std::string left_pick;
  std::string right_pick;
  std::thread lt([&] {
    const Result<QueryReply> reply = cluster.cloudtalk().Answer(left);
    if (reply.ok()) {
      left_pick = reply.value().binding.at("A").name;
    }
  });
  std::thread rt([&] {
    const Result<QueryReply> reply = cluster.cloudtalk().Answer(right);
    if (reply.ok()) {
      right_pick = reply.value().binding.at("B").name;
    }
  });
  lt.join();
  rt.join();
  // Disjoint footprints are admitted concurrently; each binds in its slice.
  EXPECT_TRUE(left_pick == cluster.ip(1) || left_pick == cluster.ip(2)) << left_pick;
  EXPECT_TRUE(right_pick == cluster.ip(9) || right_pick == cluster.ip(10)) << right_pick;
}

TEST(ScopeAdmissionTest, SingleSlotFallsBackToSerial) {
  Cluster cluster = MakeCluster(true, 16, /*seed=*/1, /*hold=*/60.0, /*slots=*/1);
  cluster.MeasureNow();
  std::vector<std::thread> threads;
  std::vector<bool> ok(3, false);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&cluster, &ok, t] {
      const int base = 1 + 4 * t;
      const std::string query = "option static\nA = (" + cluster.ip(base) + " " +
                                cluster.ip(base + 1) + ")\nf1 A -> " + cluster.ip(0) +
                                " size 1M\n";
      ok[t] = cluster.cloudtalk().Answer(query).ok();
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(ok[0] && ok[1] && ok[2]);
}

TEST(ScopeAdmissionTest, GateBypassedWithoutReservations) {
  // reservation_hold == 0 disables both the table and the gate; concurrent
  // pure queries must still complete.
  Cluster cluster = MakeCluster(true, 8, /*seed=*/1, /*hold=*/0);
  cluster.MeasureNow();
  const std::string query = "option static\noption noreserve\nA = (" + cluster.ip(1) + " " +
                            cluster.ip(2) + ")\nf1 A -> " + cluster.ip(0) + " size 1M\n";
  std::vector<std::thread> threads;
  std::vector<bool> ok(2, false);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back(
        [&cluster, &query, &ok, t] { ok[t] = cluster.cloudtalk().Answer(query).ok(); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_TRUE(ok[0] && ok[1]);
}

}  // namespace
