// Unit tests for src/common: units, stats, rng, result, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace cloudtalk {
namespace {

TEST(UnitsTest, TransferTime) {
  // 1 MB at 8 Mbps = 1.048576 seconds (binary MB).
  EXPECT_DOUBLE_EQ(TransferTime(1 * kMB, 8 * kMbps), kMB * 8 / (8e6));
  EXPECT_GT(TransferTime(1, 0), 1e17);  // Zero rate: effectively never.
}

TEST(UnitsTest, RateFor) {
  EXPECT_DOUBLE_EQ(RateFor(1000, 8), 1000.0);  // 1000 B in 8 s = 1000 bps.
  EXPECT_DOUBLE_EQ(RateFor(1000, 0), 0.0);
}

TEST(StatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
  EXPECT_NEAR(Percentile(v, 99), 9.91, 1e-9);
}

TEST(StatsTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({9, 1, 5}, 50), 5.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  const std::vector<int> sample = rng.SampleWithoutReplacement(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementWholePopulation) {
  Rng rng(11);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 10).size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  Result<int> err(Error{"boom", 3, 7});
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().message, "boom");
  EXPECT_EQ(err.error().ToString(), "boom at line 3, column 7");
}

TEST(ResultTest, ErrorWithoutPosition) {
  Error e{"plain"};
  EXPECT_EQ(e.ToString(), "plain");
}

TEST(ThreadPoolTest, RunsEveryShardExactlyOnce) {
  for (int workers : {0, 1, 3}) {
    ThreadPool pool(workers);
    for (int shards : {1, 2, 7, 64}) {
      std::vector<std::atomic<int>> hits(shards);
      pool.Run(shards, [&](int shard) { hits[shard].fetch_add(1); });
      for (int s = 0; s < shards; ++s) {
        EXPECT_EQ(hits[s].load(), 1) << "workers=" << workers << " shard=" << s;
      }
    }
  }
}

TEST(ThreadPoolTest, RunIsReentrantSequentially) {
  // Back-to-back batches on the shared pool must not deadlock or leak work.
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    ThreadPool::Shared().Run(4, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(6), 6);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1);   // Hardware concurrency.
  EXPECT_GE(ThreadPool::ResolveThreadCount(-3), 1);
}

}  // namespace
}  // namespace cloudtalk
