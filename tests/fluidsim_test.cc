// Unit and property tests for the fluid simulation engine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/fluidsim/fluid_simulation.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

SingleSwitchParams GigabitCluster(int hosts = 4) {
  SingleSwitchParams params;
  params.num_hosts = hosts;
  params.link_capacity = 1 * kGbps;
  return params;
}

GroupSpec NetworkTransfer(const FluidSimulation& sim, NodeId src, NodeId dst, Bytes size) {
  GroupSpec spec;
  FluidFlow flow;
  flow.resources = sim.resources().NetworkPath(sim.topology(), src, dst);
  flow.size = size;
  spec.flows.push_back(std::move(flow));
  return spec;
}

TEST(FluidSimTest, SingleFlowUsesFullLink) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  Seconds done = -1;
  sim.AddGroup(NetworkTransfer(sim, a, b, 125 * kMB),
               [&](GroupId, Seconds t) { done = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  // 125 MiB over 1 Gbps ~ 1.048576 s.
  EXPECT_NEAR(done, 125 * kMB * 8 / 1e9, 1e-6);
}

TEST(FluidSimTest, TwoFlowsShareBottleneckEqually) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  const NodeId c = topo.hosts()[2];
  // Both flows target b: its NIC down (1 Gbps) is the shared bottleneck.
  std::vector<Seconds> done;
  sim.AddGroup(NetworkTransfer(sim, a, b, 125 * kMB),
               [&](GroupId, Seconds t) { done.push_back(t); });
  sim.AddGroup(NetworkTransfer(sim, c, b, 125 * kMB),
               [&](GroupId, Seconds t) { done.push_back(t); });
  ASSERT_TRUE(sim.RunUntilIdle());
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 2 * 125 * kMB * 8 / 1e9, 1e-6);
  EXPECT_NEAR(done[1], 2 * 125 * kMB * 8 / 1e9, 1e-6);
}

TEST(FluidSimTest, UnequalFlowsMaxMinConvergence) {
  // Flow 1: a->b, flow 2: a->c. Shared resource: a's NIC up.
  // After flow 2 finishes, flow 1 speeds up.
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  const NodeId c = topo.hosts()[2];
  Seconds done1 = -1;
  Seconds done2 = -1;
  sim.AddGroup(NetworkTransfer(sim, a, b, 250 * kMB), [&](GroupId, Seconds t) { done1 = t; });
  sim.AddGroup(NetworkTransfer(sim, a, c, 125 * kMB), [&](GroupId, Seconds t) { done2 = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  const Seconds unit = 125 * kMB * 8 / 1e9;  // Time for 125 MiB at line rate.
  // Phase 1: both at 500 Mbps until flow 2 moves 125 MiB (takes 2*unit).
  EXPECT_NEAR(done2, 2 * unit, 1e-6);
  // Flow 1 then has 125 MiB left at full rate: one more unit.
  EXPECT_NEAR(done1, 3 * unit, 1e-6);
}

TEST(FluidSimTest, RateLimitRespected) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  GroupSpec spec = NetworkTransfer(sim, a, b, 125 * kMB);
  spec.rate_limit = 100 * kMbps;
  Seconds done = -1;
  sim.AddGroup(std::move(spec), [&](GroupId, Seconds t) { done = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_NEAR(done, 125 * kMB * 8 / 1e8, 1e-6);
}

TEST(FluidSimTest, ChainGroupBoundByslowestResource) {
  // Daisy chain a->b plus disk write on b, where b's disk is slow.
  Topology topo = MakeSingleSwitch(GigabitCluster());
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  topo.mutable_host_caps(b).disk_write = 200 * kMbps;
  FluidSimulation sim(&topo);
  GroupSpec spec;
  FluidFlow net;
  net.resources = sim.resources().NetworkPath(topo, a, b);
  net.size = 25 * kMB;
  FluidFlow disk;
  disk.resources = {sim.resources().DiskWrite(b)};
  disk.size = 25 * kMB;
  spec.flows.push_back(std::move(net));
  spec.flows.push_back(std::move(disk));
  Seconds done = -1;
  sim.AddGroup(std::move(spec), [&](GroupId, Seconds t) { done = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  // The chain advances at the disk's 200 Mbps.
  EXPECT_NEAR(done, 25 * kMB * 8 / 2e8, 1e-6);
}

TEST(FluidSimTest, BackgroundTrafficReducesElasticShare) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  // 600 Mbps of inelastic background into b.
  sim.AddBackground(sim.resources().NicDown(b), 600 * kMbps);
  Seconds done = -1;
  sim.AddGroup(NetworkTransfer(sim, a, b, 50 * kMB), [&](GroupId, Seconds t) { done = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_NEAR(done, 50 * kMB * 8 / 4e8, 1e-6);  // Gets the remaining 400 Mbps.
}

TEST(FluidSimTest, LineRateBackgroundLeavesMinimumShare) {
  // With min_available_fraction = 0.1, a flow against 100% background still
  // gets 10% of the link (models TCP vs UDP blast).
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo, /*min_available_fraction=*/0.1);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  sim.AddBackground(sim.resources().NicDown(b), 1 * kGbps);
  Seconds done = -1;
  sim.AddGroup(NetworkTransfer(sim, a, b, 12.5 * kMB), [&](GroupId, Seconds t) { done = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_NEAR(done, 12.5 * kMB * 8 / 1e8, 1e-6);
}

TEST(FluidSimTest, AddBackgroundPathIsUndoable) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  const std::vector<ResourceId> touched = sim.AddBackgroundPath(a, b, 300 * kMbps);
  EXPECT_DOUBLE_EQ(sim.background(sim.resources().NicUp(a)), 300 * kMbps);
  for (ResourceId r : touched) {
    sim.AddBackground(r, -300 * kMbps);
  }
  EXPECT_DOUBLE_EQ(sim.background(sim.resources().NicUp(a)), 0.0);
  EXPECT_DOUBLE_EQ(sim.background(sim.resources().NicDown(b)), 0.0);
}

TEST(FluidSimTest, DelayedStartTime) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  GroupSpec spec = NetworkTransfer(sim, a, b, 125 * kMB);
  spec.start_time = 5.0;
  Seconds done = -1;
  sim.AddGroup(std::move(spec), [&](GroupId, Seconds t) { done = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_NEAR(done, 5.0 + 125 * kMB * 8 / 1e9, 1e-6);
}

TEST(FluidSimTest, ScheduledCallbacksFireInOrder) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  std::vector<int> order;
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(FluidSimTest, CancelGroupReleasesCapacity) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  const NodeId c = topo.hosts()[2];
  const GroupId hog = sim.AddGroup(NetworkTransfer(sim, a, b, 1250 * kMB));
  Seconds done = -1;
  sim.AddGroup(NetworkTransfer(sim, c, b, 125 * kMB), [&](GroupId, Seconds t) { done = t; });
  sim.Schedule(0.0, [&] { sim.CancelGroup(hog); });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_NEAR(done, 125 * kMB * 8 / 1e9, 1e-4);
}

TEST(FluidSimTest, UsageReflectsElasticAndBackground) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  sim.AddBackground(sim.resources().NicDown(b), 200 * kMbps);
  sim.AddGroup(NetworkTransfer(sim, a, b, 1250 * kMB));
  sim.RunUntil(0.001);
  // Elastic flow gets 800 Mbps; usage on b's NIC down = 200 + 800.
  EXPECT_NEAR(sim.Usage(sim.resources().NicDown(b)), 1e9, 1e6);
  EXPECT_NEAR(sim.Usage(sim.resources().NicUp(a)), 8e8, 1e6);
}

TEST(FluidSimTest, ZeroSizeGroupCompletesImmediately) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  GroupSpec spec;
  FluidFlow flow;
  flow.resources = {};
  flow.size = 0;
  spec.flows.push_back(std::move(flow));
  Seconds done = -1;
  sim.AddGroup(std::move(spec), [&](GroupId, Seconds t) { done = t; });
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(FluidSimTest, LoopbackTransferConsumesNothing) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  EXPECT_TRUE(sim.resources().NetworkPath(topo, a, a).empty());
}


TEST(FluidSimTest, GroupMembersMayFinishAtDifferentTimes) {
  // A group whose members have different sizes: the small member finishes
  // first and releases its resources while the rest of the group runs on.
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  const NodeId c = topo.hosts()[2];
  GroupSpec spec;
  FluidFlow big;
  big.resources = sim.resources().NetworkPath(topo, a, b);
  big.size = 250 * kMB;
  FluidFlow small;
  small.resources = sim.resources().NetworkPath(topo, a, c);
  small.size = 125 * kMB;
  spec.flows.push_back(std::move(big));
  spec.flows.push_back(std::move(small));
  const GroupId id = sim.AddGroup(std::move(spec));
  // The group rate is bounded by a's NIC up shared by two members: 500 Mbps
  // each. After the small member's 125 MiB complete, the big one keeps the
  // same group rate but now has the uplink to itself... still one group, so
  // rate rises to 1 Gbps.
  sim.RunUntil(0.1);
  EXPECT_NEAR(sim.GroupRate(id), 5e8, 1e6);
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_FALSE(sim.GroupActive(id));
  EXPECT_NEAR(sim.GroupTransferred(id, 0), 250 * kMB, 1.0);
  EXPECT_NEAR(sim.GroupTransferred(id, 1), 125 * kMB, 1.0);
}

TEST(FluidSimTest, ScheduleFromCallback) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Schedule(sim.now() + 1.0, [&] { ++fired; });
  });
  sim.RunUntil(3.0);
  EXPECT_EQ(fired, 2);
}

TEST(FluidSimTest, UsageDropsAfterCancel) {
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  const GroupId id = sim.AddGroup(NetworkTransfer(sim, a, b, 1250 * kMB));
  sim.RunUntil(0.01);
  EXPECT_GT(sim.Usage(sim.resources().NicUp(a)), 9e8);
  sim.CancelGroup(id);
  EXPECT_NEAR(sim.Usage(sim.resources().NicUp(a)), 0.0, 1.0);
}

TEST(FluidSimTest, RunUntilIdleReportsStall) {
  // An inelastic wall with zero minimum share: the flow can never move.
  const Topology topo = MakeSingleSwitch(GigabitCluster());
  FluidSimulation sim(&topo, /*min_available_fraction=*/0.0);
  const NodeId a = topo.hosts()[0];
  const NodeId b = topo.hosts()[1];
  sim.AddBackground(sim.resources().NicDown(b), 1 * kGbps);
  sim.AddGroup(NetworkTransfer(sim, a, b, 1 * kMB));
  EXPECT_FALSE(sim.RunUntilIdle(/*hard_deadline=*/10));
}

// ---- Property-style tests ----

class MaxMinPropertyTest : public ::testing::TestWithParam<int> {};

// Invariants checked on random workloads:
//  1. No resource is over its capacity (modulo the inelastic floor).
//  2. Allocation is maximal: every group is pinned by some saturated
//     resource or by its rate limit.
TEST_P(MaxMinPropertyTest, AllocationIsFeasibleAndMaximal) {
  Rng rng(GetParam());
  SingleSwitchParams params = GigabitCluster(8);
  const Topology topo = MakeSingleSwitch(params);
  FluidSimulation sim(&topo, /*min_available_fraction=*/0.0);
  const int num_hosts = static_cast<int>(topo.hosts().size());

  std::vector<GroupId> ids;
  const int num_flows = static_cast<int>(rng.UniformInt(2, 12));
  for (int i = 0; i < num_flows; ++i) {
    const NodeId src = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    }
    GroupSpec spec = NetworkTransfer(sim, src, dst, 1250 * kMB);
    if (rng.Bernoulli(0.3)) {
      spec.rate_limit = rng.Uniform(50, 900) * kMbps;
    }
    ids.push_back(sim.AddGroup(std::move(spec)));
  }
  sim.RunUntil(1e-3);

  // Feasibility.
  for (ResourceId r = 0; r < sim.resources().num_resources(); ++r) {
    EXPECT_LE(sim.Usage(r), sim.Capacity(r) * (1 + 1e-6))
        << "resource " << r << " over capacity";
  }
  // Maximality: each active group is limited by a saturated resource or by
  // its own rate cap.
  for (GroupId id : ids) {
    if (!sim.GroupActive(id)) {
      continue;
    }
    const Bps rate = sim.GroupRate(id);
    EXPECT_GT(rate, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, MaxMinPropertyTest, ::testing::Range(1, 21));

class ConservationPropertyTest : public ::testing::TestWithParam<int> {};

// All bytes eventually arrive: sum of transferred equals sum of sizes.
TEST_P(ConservationPropertyTest, EveryByteDelivered) {
  Rng rng(GetParam() * 977);
  const Topology topo = MakeSingleSwitch(GigabitCluster(6));
  FluidSimulation sim(&topo);
  const int num_hosts = static_cast<int>(topo.hosts().size());
  struct Expect {
    GroupId id;
    Bytes size;
  };
  std::vector<Expect> expects;
  for (int i = 0; i < 8; ++i) {
    const NodeId src = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    }
    const Bytes size = rng.Uniform(1, 64) * kMB;
    GroupSpec spec = NetworkTransfer(sim, src, dst, size);
    spec.start_time = rng.Uniform(0, 2);
    expects.push_back({sim.AddGroup(std::move(spec)), size});
  }
  ASSERT_TRUE(sim.RunUntilIdle());
  for (const Expect& e : expects) {
    EXPECT_FALSE(sim.GroupActive(e.id));
    EXPECT_NEAR(sim.GroupTransferred(e.id, 0), e.size, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, ConservationPropertyTest, ::testing::Range(1, 11));

// ---- Reset() reuse path (ISSUE 1) ----

TEST(FluidSimTest, ResetReplaysIdentically) {
  // The estimator reuses one simulation across thousands of bindings via
  // Reset(): a replay after Reset must be byte-identical to the first run,
  // and background load must survive (it is set once per query).
  const Topology topo = MakeSingleSwitch(GigabitCluster(4));
  FluidSimulation sim(&topo);
  sim.SetBackground(sim.resources().NicUp(topo.hosts()[0]), 400e6);

  auto run_once = [&] {
    Seconds makespan = 0;
    GroupSpec first = NetworkTransfer(sim, topo.hosts()[0], topo.hosts()[1], 64 * kMB);
    GroupSpec second = NetworkTransfer(sim, topo.hosts()[0], topo.hosts()[2], 32 * kMB);
    second.start_time = 0.1;
    sim.AddGroup(std::move(first),
                 [&makespan](GroupId, Seconds t) { makespan = std::max(makespan, t); });
    sim.AddGroup(std::move(second),
                 [&makespan](GroupId, Seconds t) { makespan = std::max(makespan, t); });
    EXPECT_TRUE(sim.RunUntilIdle());
    return makespan;
  };

  const Seconds original = run_once();
  EXPECT_GT(original, 0.0);
  for (int i = 0; i < 3; ++i) {
    sim.Reset();
    EXPECT_EQ(sim.now(), 0.0);
    EXPECT_EQ(run_once(), original) << "replay " << i;  // Exact, no tolerance.
  }

  // Reset drops pending groups and events: a fresh run is unaffected by a
  // group scheduled but never started before the Reset.
  GroupSpec pending = NetworkTransfer(sim, topo.hosts()[1], topo.hosts()[3], 8 * kMB);
  pending.start_time = 100.0;
  sim.Reset();
  sim.AddGroup(std::move(pending));
  sim.Reset();
  EXPECT_EQ(run_once(), original);
}

// ---- Checkpoint / delta re-solve (ISSUE 6) ----

// Randomized retract/re-add: install a random workload, checkpoint, then for
// several "bindings" restore + rewire a random subset of members and compare
// the delta-solved run against a cold rebuild with the same final resource
// sets. Rates, finish times and transferred bytes must be bit-identical —
// the delta cache is only allowed to reuse a component when the reuse is
// indistinguishable from solving it cold.
class CheckpointDeltaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointDeltaPropertyTest, DeltaMatchesColdRebuildBitExactly) {
  Rng rng(GetParam() * 7919);
  const Topology topo = MakeSingleSwitch(GigabitCluster(8));
  const int num_hosts = static_cast<int>(topo.hosts().size());

  FluidSimulation delta_sim(&topo);
  delta_sim.SetBackground(delta_sim.resources().NicUp(topo.hosts()[0]), 300e6);

  const auto random_path = [&](const FluidSimulation& sim) {
    const NodeId src = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts()[rng.UniformInt(0, num_hosts - 1)];
    }
    return sim.resources().NetworkPath(sim.topology(), src, dst);
  };

  // Install: random groups (1-3 flows each, occasional caps and delayed
  // starts), then checkpoint the pristine pre-run state.
  struct Installed {
    GroupId id;
    GroupSpec spec;  // Kept for the cold rebuilds.
  };
  std::vector<Installed> installed;
  const int num_groups = static_cast<int>(rng.UniformInt(2, 6));
  for (int g = 0; g < num_groups; ++g) {
    GroupSpec spec;
    const int num_flows = static_cast<int>(rng.UniformInt(1, 3));
    for (int f = 0; f < num_flows; ++f) {
      FluidFlow flow;
      flow.resources = random_path(delta_sim);
      flow.size = rng.Uniform(1, 64) * kMB;
      spec.flows.push_back(std::move(flow));
    }
    if (rng.Bernoulli(0.3)) {
      spec.rate_limit = rng.Uniform(50, 900) * kMbps;
    }
    if (rng.Bernoulli(0.3)) {
      spec.start_time = rng.Uniform(0, 1);
    }
    Installed entry;
    entry.spec = spec;  // Copy before the sim takes ownership.
    entry.id = delta_sim.AddGroup(std::move(spec));
    installed.push_back(std::move(entry));
  }
  delta_sim.SaveCheckpoint();
  // The install binding's own run: its first recompute captures the
  // checkpoint solution, arming component reuse for later restores (the
  // same order the estimator uses).
  ASSERT_TRUE(delta_sim.RunUntilIdle());

  for (int binding = 0; binding < 6; ++binding) {
    delta_sim.RestoreCheckpoint();
    // Retract a random subset of members and re-add them on fresh paths. The
    // patch diff is against the *checkpoint* (restore reverted everything
    // else), exactly like the estimator's per-binding rebind.
    std::vector<GroupSpec> cur_specs;
    cur_specs.reserve(installed.size());
    for (Installed& entry : installed) {
      GroupSpec spec = entry.spec;
      bool touched = false;
      for (size_t f = 0; f < spec.flows.size(); ++f) {
        if (!rng.Bernoulli(0.4)) {
          continue;
        }
        std::vector<ResourceId> path = random_path(delta_sim);
        spec.flows[f].resources = path;
        delta_sim.MutableMemberResources(entry.id, static_cast<int>(f)) = std::move(path);
        touched = true;
      }
      if (touched) {
        delta_sim.MarkGroupDirty(entry.id);
      }
      cur_specs.push_back(std::move(spec));
    }
    ASSERT_TRUE(delta_sim.RunUntilIdle());

    // Cold rebuild: a fresh simulation fed the same final specs in the same
    // order, with the same background.
    FluidSimulation cold_sim(&topo);
    cold_sim.SetBackground(cold_sim.resources().NicUp(topo.hosts()[0]), 300e6);
    std::vector<GroupId> cold_ids;
    for (GroupSpec& spec : cur_specs) {
      cold_ids.push_back(cold_sim.AddGroup(std::move(spec)));
    }
    ASSERT_TRUE(cold_sim.RunUntilIdle());

    for (size_t g = 0; g < installed.size(); ++g) {
      SCOPED_TRACE("binding " + std::to_string(binding) + " group " + std::to_string(g));
      // Exact, no tolerance: bitwise equality of the final trajectory.
      EXPECT_EQ(delta_sim.GroupFinishTime(installed[g].id),
                cold_sim.GroupFinishTime(cold_ids[g]));
      for (size_t f = 0; f < installed[g].spec.flows.size(); ++f) {
        EXPECT_EQ(delta_sim.GroupTransferred(installed[g].id, static_cast<int>(f)),
                  cold_sim.GroupTransferred(cold_ids[g], static_cast<int>(f)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, CheckpointDeltaPropertyTest, ::testing::Range(1, 16));

TEST(FluidSimTest, CheckpointRestoreReplaysIdentically) {
  // Restoring the same checkpoint twice and applying the same patch must
  // replay the exact trajectory — the delta cache may not leak state from
  // one restore into the next.
  const Topology topo = MakeSingleSwitch(GigabitCluster(4));
  FluidSimulation sim(&topo);
  const GroupId a =
      sim.AddGroup(NetworkTransfer(sim, topo.hosts()[0], topo.hosts()[1], 64 * kMB));
  const GroupId b =
      sim.AddGroup(NetworkTransfer(sim, topo.hosts()[0], topo.hosts()[2], 32 * kMB));
  sim.SaveCheckpoint();
  ASSERT_TRUE(sim.RunUntilIdle());  // Captures the checkpoint solution.

  auto run_patched = [&] {
    sim.RestoreCheckpoint();
    sim.MutableMemberResources(b, 0) =
        sim.resources().NetworkPath(sim.topology(), topo.hosts()[3], topo.hosts()[1]);
    sim.MarkGroupDirty(b);
    EXPECT_TRUE(sim.RunUntilIdle());
    return std::make_pair(sim.GroupFinishTime(a), sim.GroupFinishTime(b));
  };

  const auto first = run_patched();
  EXPECT_GT(first.first, 0.0);
  EXPECT_GT(first.second, 0.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run_patched(), first) << "replay " << i;
  }

  // An unpatched restore replays the checkpointed workload itself, and the
  // delta cache actually serves it (no cold component solves on the replay).
  sim.RestoreCheckpoint();
  const auto before = sim.solver_counters();
  EXPECT_TRUE(sim.RunUntilIdle());
  const auto after = sim.solver_counters();
  EXPECT_GT(after.delta_component_hits, before.delta_component_hits);
}

TEST(FluidSimTest, RecomputeCountSurvivesReset) {
  // The estimator reports per-query solver work by differencing
  // recompute_count_ across bindings; Reset() (one per cold rebind) must not
  // zero it.
  const Topology topo = MakeSingleSwitch(GigabitCluster(4));
  FluidSimulation sim(&topo);
  sim.AddGroup(NetworkTransfer(sim, topo.hosts()[0], topo.hosts()[1], 8 * kMB));
  ASSERT_TRUE(sim.RunUntilIdle());
  const int64_t after_first = sim.solver_counters().recomputes;
  EXPECT_GT(after_first, 0);
  sim.Reset();
  EXPECT_EQ(sim.solver_counters().recomputes, after_first);
  sim.AddGroup(NetworkTransfer(sim, topo.hosts()[0], topo.hosts()[1], 8 * kMB));
  ASSERT_TRUE(sim.RunUntilIdle());
  EXPECT_GT(sim.solver_counters().recomputes, after_first);
}

}  // namespace
}  // namespace cloudtalk
